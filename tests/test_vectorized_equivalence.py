"""Differential suite: vectorized getPlan ≡ scalar getPlan, bit for bit.

The columnar hot path (``check_impl="vectorized"``) promises *identical
decisions* to the scalar reference — same check kind, same chosen plan,
same anchor object, same certificate kind, coverage and bound value,
same recost-call count, and the same scan accounting.  This suite
drives both implementations over seeded random workloads in all three
check modes (point / robust / probabilistic), including degraded
(widened) boxes, coverage-shrunk boxes and retired-entry handling, and
fails on the first divergence.

The equivalence is exact, not approximate: the vectorized kernels
replay the scalar IEEE-754 operation sequence (see
:mod:`repro.core.columnar`), so every comparison below uses ``==`` on
floats deliberately.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bounds import LINEAR_BOUND, QUADRATIC_BOUND
from repro.core.dynamic_lambda import DynamicLambda
from repro.core.get_plan import CandidateOrder, GetPlan
from repro.core.plan_cache import CachedPlan, InstanceEntry, PlanCache
from repro.core.scr import SCR
from repro.engine.database import Database
from repro.query.instance import (
    QueryInstance,
    SelectivityVector,
    UncertainSelectivityVector,
)
from repro.query.template import QueryTemplate, join, range_predicate
from repro.workload.generator import generate_selectivity_vectors


class _StubMemo:
    node_count = 1


def build_cache(rng: random.Random, n: int, d: int,
                retire_fraction: float = 0.15) -> PlanCache:
    """A synthetic plan cache with ``n`` instances over ``d`` dims."""
    cache = PlanCache()
    for i in range(max(1, n // 4)):
        plan = CachedPlan(
            plan_id=cache._next_plan_id, signature=f"p{i}", plan=None,
            shrunken_memo=_StubMemo(),
        )
        cache._plans[plan.plan_id] = plan
        cache._by_signature[plan.signature] = plan.plan_id
        cache._next_plan_id += 1
        cache._mutated()
    plan_ids = list(cache._plans)
    for _ in range(n):
        sv = SelectivityVector.from_sequence(
            [10 ** rng.uniform(-4, 0) for _ in range(d)]
        )
        entry = InstanceEntry(
            sv=sv,
            plan_id=rng.choice(plan_ids),
            optimal_cost=rng.uniform(10.0, 1e4),
            suboptimality=rng.uniform(1.0, 1.5),
            usage=rng.randint(1, 20),
        )
        if rng.random() < retire_fraction:
            entry.retired = True
        cache.add_instance(entry)
    return cache


def make_recost(seed: int):
    """A deterministic stand-in for the engine's Recost API."""

    def recost(memo, point: SelectivityVector) -> float:
        return 50.0 + hash((seed, point.values)) % 1000

    return recost


def random_input(rng: random.Random, d: int, boxed: bool):
    point = [10 ** rng.uniform(-4, 0) for _ in range(d)]
    if not boxed:
        return SelectivityVector.from_sequence(point)
    usv = UncertainSelectivityVector(
        point=SelectivityVector.from_sequence(point),
        lo=SelectivityVector.from_sequence(
            [p * rng.uniform(0.4, 1.0) for p in point]
        ),
        hi=SelectivityVector.from_sequence(
            [min(1.0, p * rng.uniform(1.0, 2.5)) for p in point]
        ),
    )
    roll = rng.random()
    if roll < 0.25:
        # Degraded-read shape: conservatively widened box.
        return usv.widened(rng.uniform(1.0, 2.0))
    if roll < 0.5:
        # Probabilistic shape: box shrunk to a sub-1 coverage claim.
        return usv.for_coverage(rng.uniform(0.5, 0.99))
    if roll < 0.6:
        # Exactly-known selectivities: zero-width box.
        return UncertainSelectivityVector.exact(
            SelectivityVector.from_sequence(point)
        )
    return usv


def assert_decisions_identical(ds, dv, context: str) -> None:
    assert ds.check == dv.check, context
    assert ds.plan_id == dv.plan_id, context
    assert ds.anchor is dv.anchor, context
    assert ds.recost_calls == dv.recost_calls, context
    assert ds.recost_ratio == dv.recost_ratio, context
    assert ds.g == dv.g and ds.l == dv.l, context
    assert ds.bound_value == dv.bound_value, context
    assert ds.certificate == dv.certificate, context
    assert ds.coverage == dv.coverage, context
    # The calibration feed's uncensored samples must match too: same
    # anchors recosted, in order, with identical (r, g, l).
    assert len(ds.recost_samples) == len(dv.recost_samples), context
    for (ea, ra, ga, la), (eb, rb, gb, lb) in zip(
        ds.recost_samples, dv.recost_samples
    ):
        assert ea is eb and ra == rb and ga == gb and la == lb, context


@pytest.mark.parametrize("check_mode", ["point", "robust", "probabilistic"])
@pytest.mark.parametrize(
    "order", [CandidateOrder.GL, CandidateOrder.AREA, CandidateOrder.USAGE]
)
def test_differential_random_workloads(check_mode, order):
    rng = random.Random(hash((check_mode, order.value)) % (2**31))
    for round_no in range(4):
        d = rng.choice([2, 4, 7])
        cache = build_cache(rng, rng.choice([0, 1, 17, 90]), d)
        lam_for = rng.choice([None, DynamicLambda(1.1, 3.0, 500.0)])
        common = dict(
            cache=cache, lam=rng.uniform(1.2, 2.5), check_mode=check_mode,
            candidate_order=order, lambda_for=lam_for,
            bound=rng.choice([LINEAR_BOUND, QUADRATIC_BOUND]),
            max_recost_candidates=rng.choice([0, 2, 8]),
            target_coverage=rng.choice([0.8, 0.95]),
        )
        scalar = GetPlan(check_impl="scalar", **common)
        vectorized = GetPlan(check_impl="vectorized", **common)
        recost = make_recost(round_no)
        for t in range(150):
            boxed = check_mode != "point" and rng.random() < 0.7
            sv = random_input(rng, d, boxed)
            context = f"{check_mode}/{order.value} round={round_no} t={t}"
            ds = scalar.probe(sv, recost)
            dv = vectorized.probe(sv, recost)
            assert_decisions_identical(ds, dv, context)
            if rng.random() < 0.05 and cache.num_instances:
                # Flip a retired bit mid-stream (no epoch bump), the way
                # the Appendix G detector does: both impls must read the
                # flag live.
                entry = rng.choice(list(cache.instances()))
                entry.retired = not entry.retired
        assert scalar.entries_scanned == vectorized.entries_scanned


@pytest.mark.parametrize("check_mode", ["point", "robust", "probabilistic"])
def test_differential_per_call_overrides(check_mode):
    """max_recost and coverage per-call overrides match too."""
    rng = random.Random(99)
    cache = build_cache(rng, 60, 3)
    scalar = GetPlan(
        cache=cache, lam=1.5, check_mode=check_mode, check_impl="scalar"
    )
    vectorized = GetPlan(
        cache=cache, lam=1.5, check_mode=check_mode, check_impl="vectorized"
    )
    recost = make_recost(5)
    for t in range(120):
        sv = random_input(rng, 3, check_mode != "point")
        max_recost = rng.choice([None, 0, 1])
        coverage = rng.choice([None, 0.6, 0.9])
        ds = scalar.probe(sv, recost, max_recost=max_recost, coverage=coverage)
        dv = vectorized.probe(
            sv, recost, max_recost=max_recost, coverage=coverage
        )
        assert_decisions_identical(ds, dv, f"{check_mode} t={t}")


def test_differential_explicit_entry_subsets():
    """Probing an explicit entry list (the snapshot path) matches."""
    rng = random.Random(4)
    cache = build_cache(rng, 40, 3)
    scalar = GetPlan(cache=cache, lam=1.6, check_impl="scalar")
    vectorized = GetPlan(cache=cache, lam=1.6, check_impl="vectorized")
    recost = make_recost(1)
    all_entries = list(cache.instances())
    for t in range(60):
        subset = tuple(
            e for e in all_entries if rng.random() < 0.5
        )
        sv = random_input(rng, 3, False)
        ds = scalar.probe(sv, recost, entries=subset)
        dv = vectorized.probe(sv, recost, entries=subset)
        assert_decisions_identical(ds, dv, f"subset t={t}")


@pytest.mark.parametrize("check_mode", ["robust", "probabilistic"])
def test_batch_shared_corner_kernel_parity(check_mode):
    """Batches with duplicated coverage boxes share one corner kernel.

    ``probe_batch`` deduplicates identical (lo, hi) boxes before the
    corner G·L kernel and gathers the rows back by inverse index — this
    drives batches where most rows repeat a handful of boxes (the
    dedupe=False serving shape) and checks two things: the kernel
    really ran on fewer rows than the batch, and every decision is
    still bit-identical to the scalar per-probe reference.
    """
    from repro.core import get_plan as get_plan_module

    rng = random.Random(17)
    cache = build_cache(rng, 70, 4)
    common = dict(cache=cache, lam=1.8, check_mode=check_mode)
    scalar = GetPlan(check_impl="scalar", **common)
    vectorized = GetPlan(check_impl="vectorized", **common)
    recost = make_recost(8)
    kernel_rows = []
    real_kernel = get_plan_module.corner_gl_matrix

    def counting_kernel(sv, lo, hi, sv_sq=None):
        kernel_rows.append(len(lo))
        return real_kernel(sv, lo, hi, sv_sq)

    get_plan_module.corner_gl_matrix = counting_kernel
    try:
        for t in range(12):
            unique = [random_input(rng, 4, True) for _ in range(5)]
            batch = []
            for usv in unique:
                batch.extend([usv] * rng.randint(2, 4))
            rng.shuffle(batch)
            coverage = rng.choice([None, 0.7])
            kernel_rows.clear()
            dv = vectorized.probe_batch(batch, recost, coverage=coverage)
            # Each chunk evaluates at most one kernel row per distinct
            # box, and every row is duplicated: strictly fewer kernel
            # rows than batch rows.
            assert kernel_rows
            assert all(rows <= len(unique) for rows in kernel_rows)
            assert sum(kernel_rows) < len(batch)
            ds = [
                scalar.probe(sv, recost, coverage=coverage) for sv in batch
            ]
            for i, (a, b) in enumerate(zip(ds, dv)):
                assert_decisions_identical(
                    a, b, f"{check_mode} t={t} row={i}"
                )
    finally:
        get_plan_module.corner_gl_matrix = real_kernel


def test_batch_single_box_evaluates_one_kernel_row():
    """The degenerate (and common) case: one box for the whole batch."""
    from repro.core import get_plan as get_plan_module

    rng = random.Random(23)
    cache = build_cache(rng, 50, 3)
    vectorized = GetPlan(
        cache=cache, lam=1.6, check_mode="robust", check_impl="vectorized"
    )
    scalar = GetPlan(
        cache=cache, lam=1.6, check_mode="robust", check_impl="scalar"
    )
    recost = make_recost(3)
    usv = random_input(rng, 3, True)
    batch = [usv] * 16
    kernel_rows = []
    real_kernel = get_plan_module.corner_gl_matrix

    def counting_kernel(sv, lo, hi, sv_sq=None):
        kernel_rows.append(len(lo))
        return real_kernel(sv, lo, hi, sv_sq)

    get_plan_module.corner_gl_matrix = counting_kernel
    try:
        dv = vectorized.probe_batch(batch, recost)
    finally:
        get_plan_module.corner_gl_matrix = real_kernel
    assert kernel_rows == [1]  # 16 rows, one shared box, one kernel row
    ds = [scalar.probe(sv, recost) for sv in batch]
    for i, (a, b) in enumerate(zip(ds, dv)):
        assert_decisions_identical(a, b, f"single-box row={i}")


def _toy_template() -> QueryTemplate:
    return QueryTemplate(
        name="diff_join",
        database="toy",
        tables=["orders", "cust"],
        joins=[join("orders", "o_cust", "cust", "c_id")],
        parameterized=[
            range_predicate("orders", "o_date", "<="),
            range_predicate("cust", "c_bal", "<="),
        ],
    )


@pytest.mark.parametrize("check_mode", ["point", "robust", "probabilistic"])
def test_differential_full_scr_pipeline(check_mode):
    """Two complete SCR stacks (scalar vs vectorized) over one workload
    agree on every choice and end with identical cache shapes."""
    from conftest import build_toy_schema

    choices = {}
    for impl in ("scalar", "vectorized"):
        db = Database.create(build_toy_schema(), seed=13)
        engine = db.engine(_toy_template())
        scr = SCR(
            engine, lam=2.0, plan_budget=4, check_mode=check_mode,
            check_impl=impl,
        )
        rows = []
        for sv in generate_selectivity_vectors(2, 60, seed=31):
            choice = scr.process(QueryInstance("diff_join", sv=sv))
            rows.append(
                (
                    choice.check, choice.plan_signature, choice.certified,
                    choice.certificate, choice.coverage,
                    choice.certified_bound, choice.recost_calls,
                )
            )
        rows.append(("plans", scr.cache.num_plans, scr.cache.num_instances,
                     scr.optimizer_calls, scr.get_plan.total_recost_calls))
        choices[impl] = rows
    assert choices["scalar"] == choices["vectorized"]


def test_vectorized_serving_has_zero_live_lambda_violations():
    """An obs-instrumented vectorized run certifies within λ throughout."""
    from conftest import build_toy_schema

    from repro.obs import Observability

    db = Database.create(build_toy_schema(), seed=17)
    engine = db.engine(_toy_template())
    obs = Observability()
    scr = SCR(engine, lam=2.0, plan_budget=4, obs=obs, check_impl="vectorized")
    for sv in generate_selectivity_vectors(2, 80, seed=41):
        scr.process(QueryInstance("diff_join", sv=sv))
    assert obs.audit.total_violations == 0


def test_differential_usage_order_under_live_mutation():
    """USAGE candidate order stays scalar-identical while usage counters
    move underneath the memoized rank (commits bump ``usage_version``,
    which must invalidate the columnar rank without an epoch bump)."""
    rng = random.Random(12)
    cache = build_cache(rng, 70, 3)
    scalar = GetPlan(
        cache=cache, lam=1.4, check_impl="scalar",
        candidate_order=CandidateOrder.USAGE, max_recost_candidates=4,
    )
    vectorized = GetPlan(
        cache=cache, lam=1.4, check_impl="vectorized",
        candidate_order=CandidateOrder.USAGE, max_recost_candidates=4,
    )
    recost = make_recost(7)
    entries = list(cache.instances())
    epoch_before = cache.epoch
    for t in range(200):
        sv = random_input(rng, 3, False)
        ds = scalar.probe(sv, recost)
        dv = vectorized.probe(sv, recost)
        assert_decisions_identical(ds, dv, f"usage-mutation t={t}")
        # Mutate usage the way live commits do: entry counter + version
        # bump via touch() — never an epoch bump.
        if rng.random() < 0.4:
            entry = rng.choice(entries)
            entry.usage += rng.randint(1, 5)
            cache.touch(entry.plan_id)
    assert cache.epoch == epoch_before  # usage edits must not invalidate views
    assert scalar.entries_scanned == vectorized.entries_scanned


def test_usage_rank_memo_reuses_until_version_changes():
    rng = random.Random(3)
    cache = build_cache(rng, 30, 2, retire_fraction=0.0)
    view = cache.columnar()
    r1 = view.usage_rank(cache.usage_version)
    assert view.usage_rank(cache.usage_version) is r1  # memo hit
    first = next(cache.instances())
    first.usage += 100
    cache.usage_version += 1
    r2 = view.usage_rank(cache.usage_version)
    assert r2 is not r1
    assert r2[0] == 0  # now the most-used row ranks first


def test_sv_sq_memo_matches_unmemoized_corners():
    import numpy as np

    from repro.core.columnar import corner_gl_matrix, corner_matrix

    rng = random.Random(8)
    cache = build_cache(rng, 25, 4, retire_fraction=0.0)
    view = cache.columnar()
    assert view.sv_sq is view.sv_sq  # cached_property: built once
    lo = np.array([[10 ** rng.uniform(-4, -1) for _ in range(4)]])
    hi = lo * 3.0
    assert np.array_equal(
        corner_matrix(view.sv, lo, hi),
        corner_matrix(view.sv, lo, hi, view.sv_sq),
    )
    g0, l0 = corner_gl_matrix(view.sv, lo, hi)
    g1, l1 = corner_gl_matrix(view.sv, lo, hi, view.sv_sq)
    assert np.array_equal(g0, g1) and np.array_equal(l0, l1)


def test_scalar_fallback_when_requested():
    cache = PlanCache()
    gp = GetPlan(cache=cache, lam=2.0, check_impl="scalar")
    assert not gp.vectorized
    assert not gp.supports_batch
    with pytest.raises(ValueError):
        GetPlan(cache=cache, lam=2.0, check_impl="simd")


def test_recost_and_optimizer_call_counts_are_pinned():
    """Regression pin for the candidate-ordering hot path.

    The G·L order key is computed once per candidate in the selectivity
    phase and reused by the cost phase's sort; re-deriving it (or any
    ordering drift) changes which anchors get recosted and therefore
    these exact counts.  Both implementations must land on the same
    pinned numbers for the canonical seeded workload.
    """
    from conftest import build_toy_schema

    counts = {}
    for impl in ("scalar", "vectorized"):
        db = Database.create(build_toy_schema(), seed=13)
        engine = db.engine(_toy_template())
        scr = SCR(engine, lam=1.3, plan_budget=3, max_recost_candidates=2,
                  check_impl=impl)
        for sv in generate_selectivity_vectors(2, 50, seed=7):
            scr.process(QueryInstance("diff_join", sv=sv))
        counts[impl] = (
            scr.optimizer_calls,
            scr.get_plan.total_recost_calls,
            scr.get_plan.selectivity_hits,
            scr.get_plan.cost_hits,
            scr.get_plan.misses,
            scr.get_plan.entries_scanned,
        )
    assert counts["scalar"] == counts["vectorized"]
    pinned = counts["vectorized"]
    assert pinned == PINNED_CANONICAL_COUNTS, (
        f"canonical workload call counts drifted: {pinned} != "
        f"{PINNED_CANONICAL_COUNTS}; an intentional decision-procedure "
        "change must update this pin alongside the golden trace"
    )


#: (optimizer_calls, total_recost_calls, selectivity_hits, cost_hits,
#: misses, entries_scanned) for the canonical seeded run above.
PINNED_CANONICAL_COUNTS = (29, 74, 5, 16, 29, 463)  # set by regeneration below


def _regen_pin() -> None:
    import re
    from pathlib import Path

    from conftest import build_toy_schema

    db = Database.create(build_toy_schema(), seed=13)
    engine = db.engine(_toy_template())
    scr = SCR(engine, lam=1.3, plan_budget=3, max_recost_candidates=2,
              check_impl="vectorized")
    for sv in generate_selectivity_vectors(2, 50, seed=7):
        scr.process(QueryInstance("diff_join", sv=sv))
    pinned = (
        scr.optimizer_calls,
        scr.get_plan.total_recost_calls,
        scr.get_plan.selectivity_hits,
        scr.get_plan.cost_hits,
        scr.get_plan.misses,
        scr.get_plan.entries_scanned,
    )
    path = Path(__file__)
    text = path.read_text()
    text = re.sub(
        r"PINNED_CANONICAL_COUNTS = \([0-9, ]+\)",
        f"PINNED_CANONICAL_COUNTS = {pinned}",
        text,
    )
    path.write_text(text)
    print(f"pinned {pinned}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen_pin()
    else:
        print(__doc__)
