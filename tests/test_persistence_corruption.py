"""Persistence corruption round-trips: truncation, bit flips, checksum
mismatches, and crash-safe atomic saves.

The snapshot layer must never load damaged state silently — corruption
surfaces as :class:`CacheCorruptionError` — and a crash mid-save must
leave the previous snapshot intact (temp file + ``os.replace``).
"""

import json
import os

import pytest

from repro.core.persistence import (
    CacheCorruptionError,
    CacheSnapshot,
    dump_cache,
    load_cache,
)
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.optimizer.optimizer import QueryOptimizer
from repro.workload.generator import instances_for_template


@pytest.fixture()
def populated_cache(toy_db, toy_template):
    optimizer = QueryOptimizer(
        toy_template, toy_db.stats, toy_db.estimator, toy_db.cost_model
    )
    engine = EngineAPI(toy_template, optimizer, toy_db.estimator)
    scr = SCR(engine, lam=2.0)
    for inst in instances_for_template(toy_template, 60, seed=31):
        scr.process(inst)
    return scr.cache


class TestChecksummedFormat:
    def test_dump_embeds_checksum(self, populated_cache):
        doc = json.loads(dump_cache(populated_cache))
        assert doc["version"] == 2
        assert len(doc["checksum"]) == 64          # SHA-256 hex digest
        assert "plans" in doc["payload"]

    def test_round_trip(self, populated_cache):
        restored = load_cache(dump_cache(populated_cache))
        assert restored.num_plans == populated_cache.num_plans
        assert restored.num_instances == populated_cache.num_instances

    def test_legacy_v1_document_still_loads(self, populated_cache):
        doc = json.loads(dump_cache(populated_cache))
        legacy = dict(doc["payload"])
        legacy["version"] = 1
        restored = load_cache(json.dumps(legacy))
        assert restored.num_plans == populated_cache.num_plans


class TestCorruptionDetection:
    def test_truncated_document(self, populated_cache):
        text = dump_cache(populated_cache)
        with pytest.raises(CacheCorruptionError, match="JSON"):
            load_cache(text[: len(text) // 2])

    def test_empty_document(self):
        with pytest.raises(CacheCorruptionError):
            load_cache("")

    def test_non_object_document(self):
        with pytest.raises(CacheCorruptionError, match="object"):
            load_cache("[1, 2, 3]")

    def test_bit_flipped_payload(self, populated_cache):
        doc = json.loads(dump_cache(populated_cache))
        doc["payload"]["instances"][0]["optimal_cost"] += 1.0
        with pytest.raises(CacheCorruptionError, match="checksum"):
            load_cache(json.dumps(doc))

    def test_checksum_field_tampered(self, populated_cache):
        doc = json.loads(dump_cache(populated_cache))
        doc["checksum"] = "0" * 64
        with pytest.raises(CacheCorruptionError, match="checksum"):
            load_cache(json.dumps(doc))

    def test_missing_checksum(self, populated_cache):
        doc = json.loads(dump_cache(populated_cache))
        del doc["checksum"]
        with pytest.raises(CacheCorruptionError, match="payload/checksum"):
            load_cache(json.dumps(doc))

    def test_malformed_v1_payload_raises_corruption(self):
        # Well-formed JSON, legacy version, but the payload is missing
        # fields — must surface as CacheCorruptionError, not KeyError.
        with pytest.raises(CacheCorruptionError, match="malformed"):
            load_cache('{"version": 1, "plans": [{"plan_id": 0}], "instances": []}')

    def test_unsupported_version_stays_value_error(self):
        with pytest.raises(ValueError, match="version"):
            load_cache('{"version": 99}')


class TestSnapshotFileSafety:
    def test_corrupt_file_raises_and_is_left_intact(
        self, populated_cache, tmp_path
    ):
        path = tmp_path / "cache.json"
        snapshot = CacheSnapshot(str(path))
        snapshot.save(populated_cache)
        damaged = path.read_text()[:100]
        path.write_text(damaged)
        with pytest.raises(CacheCorruptionError):
            snapshot.load()
        # The failed load must not touch the file (forensics).
        assert path.read_text() == damaged

    def test_crashed_save_preserves_previous_snapshot(
        self, populated_cache, tmp_path, monkeypatch
    ):
        path = tmp_path / "cache.json"
        snapshot = CacheSnapshot(str(path))
        snapshot.save(populated_cache)
        before = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            snapshot.save(populated_cache)
        monkeypatch.undo()
        # Old snapshot intact and loadable; no temp litter left behind.
        assert path.read_bytes() == before
        assert snapshot.load().num_plans == populated_cache.num_plans
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_save_is_atomic_via_replace(self, populated_cache, tmp_path):
        path = tmp_path / "cache.json"
        snapshot = CacheSnapshot(str(path))
        size = snapshot.save(populated_cache)
        assert size == len(path.read_text())
        # Saving over an existing snapshot keeps it loadable throughout.
        snapshot.save(populated_cache)
        assert snapshot.load().num_plans == populated_cache.num_plans

    def test_partial_write_tail_never_reaches_destination(
        self, populated_cache, tmp_path, monkeypatch
    ):
        # A worker dying mid-write leaves a short tail in the *temp*
        # file; the destination must keep the previous complete dump.
        path = tmp_path / "cache.json"
        snapshot = CacheSnapshot(str(path))
        snapshot.save(populated_cache)
        before = path.read_bytes()

        real_fdopen = os.fdopen

        def truncating_fdopen(fd, *args, **kwargs):
            f = real_fdopen(fd, *args, **kwargs)
            real_write = f.write

            def short_write(text):
                real_write(text[: len(text) // 3])
                raise OSError("simulated power loss mid-write")

            f.write = short_write
            return f

        monkeypatch.setattr(os, "fdopen", truncating_fdopen)
        with pytest.raises(OSError, match="power loss"):
            snapshot.save(populated_cache)
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert snapshot.load().num_plans == populated_cache.num_plans
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_partial_tail_on_disk_is_rejected_not_loaded(
        self, populated_cache, tmp_path
    ):
        # Defense in depth: if a torn dump *does* land on disk (e.g. a
        # non-atomic copy), the loader refuses it rather than restoring
        # a prefix of the cache.
        path = tmp_path / "cache.json"
        snapshot = CacheSnapshot(str(path))
        snapshot.save(populated_cache)
        text = path.read_text()
        for cut in (len(text) - 1, len(text) - 7, len(text) // 2):
            path.write_text(text[:cut])
            with pytest.raises(CacheCorruptionError):
                snapshot.load()
            assert snapshot.load_or_none() is None

    def test_concurrent_reader_sees_old_or_new_never_torn(
        self, populated_cache, tmp_path
    ):
        # Readers racing a save must observe a complete document —
        # either generation, never a blend — because the publish is a
        # single rename.  Loop load() in a thread while the main thread
        # alternates saves of two distinguishable caches.
        import threading

        from repro.core.plan_cache import PlanCache

        path = tmp_path / "cache.json"
        snapshot = CacheSnapshot(str(path))
        empty = PlanCache()
        snapshot.save(populated_cache)

        valid_counts = {0, populated_cache.num_plans}
        seen: list[int] = []
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    seen.append(snapshot.load().num_plans)
                except BaseException as exc:  # noqa: BLE001 - recorded for assert
                    errors.append(exc)

        t = threading.Thread(target=reader)
        t.start()
        try:
            for i in range(30):
                snapshot.save(empty if i % 2 else populated_cache)
        finally:
            stop.set()
            t.join(timeout=30)
        assert not errors, f"reader saw a torn snapshot: {errors[:3]}"
        assert seen and set(seen) <= valid_counts

    def test_load_or_none_missing_file(self, tmp_path):
        assert CacheSnapshot(str(tmp_path / "absent.json")).load_or_none() is None

    def test_load_or_none_round_trip(self, populated_cache, tmp_path):
        path = tmp_path / "cache.json"
        snapshot = CacheSnapshot(str(path))
        snapshot.save(populated_cache)
        restored = snapshot.load_or_none()
        assert restored is not None
        assert restored.num_plans == populated_cache.num_plans


class TestAdopt:
    def test_adopt_replaces_contents_in_place(self, populated_cache):
        from repro.core.plan_cache import PlanCache

        live = PlanCache()
        held = live  # aliases held by get_plan/manage_cache/spatial index
        restored = load_cache(dump_cache(populated_cache))
        live.adopt(restored)
        assert held is live
        assert live.num_plans == populated_cache.num_plans
        assert live.num_instances == populated_cache.num_instances

    def test_adopt_advances_epoch_past_stale_views(self, populated_cache):
        from repro.core.plan_cache import PlanCache

        live = PlanCache()
        stale = live.snapshot()
        live.adopt(load_cache(dump_cache(populated_cache)))
        assert live.snapshot().epoch > stale.epoch
        assert len(live.snapshot().entries) == populated_cache.num_instances

    def test_adopt_notifies_instance_listeners(self, populated_cache):
        from repro.core.plan_cache import PlanCache

        live = PlanCache()
        added = []
        live.on_instance_added.append(added.append)
        live.adopt(load_cache(dump_cache(populated_cache)))
        assert len(added) == populated_cache.num_instances
