"""Persistence corruption round-trips: truncation, bit flips, checksum
mismatches, and crash-safe atomic saves.

The snapshot layer must never load damaged state silently — corruption
surfaces as :class:`CacheCorruptionError` — and a crash mid-save must
leave the previous snapshot intact (temp file + ``os.replace``).
"""

import json
import os

import pytest

from repro.core.persistence import (
    CacheCorruptionError,
    CacheSnapshot,
    dump_cache,
    load_cache,
)
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.optimizer.optimizer import QueryOptimizer
from repro.workload.generator import instances_for_template


@pytest.fixture()
def populated_cache(toy_db, toy_template):
    optimizer = QueryOptimizer(
        toy_template, toy_db.stats, toy_db.estimator, toy_db.cost_model
    )
    engine = EngineAPI(toy_template, optimizer, toy_db.estimator)
    scr = SCR(engine, lam=2.0)
    for inst in instances_for_template(toy_template, 60, seed=31):
        scr.process(inst)
    return scr.cache


class TestChecksummedFormat:
    def test_dump_embeds_checksum(self, populated_cache):
        doc = json.loads(dump_cache(populated_cache))
        assert doc["version"] == 2
        assert len(doc["checksum"]) == 64          # SHA-256 hex digest
        assert "plans" in doc["payload"]

    def test_round_trip(self, populated_cache):
        restored = load_cache(dump_cache(populated_cache))
        assert restored.num_plans == populated_cache.num_plans
        assert restored.num_instances == populated_cache.num_instances

    def test_legacy_v1_document_still_loads(self, populated_cache):
        doc = json.loads(dump_cache(populated_cache))
        legacy = dict(doc["payload"])
        legacy["version"] = 1
        restored = load_cache(json.dumps(legacy))
        assert restored.num_plans == populated_cache.num_plans


class TestCorruptionDetection:
    def test_truncated_document(self, populated_cache):
        text = dump_cache(populated_cache)
        with pytest.raises(CacheCorruptionError, match="JSON"):
            load_cache(text[: len(text) // 2])

    def test_empty_document(self):
        with pytest.raises(CacheCorruptionError):
            load_cache("")

    def test_non_object_document(self):
        with pytest.raises(CacheCorruptionError, match="object"):
            load_cache("[1, 2, 3]")

    def test_bit_flipped_payload(self, populated_cache):
        doc = json.loads(dump_cache(populated_cache))
        doc["payload"]["instances"][0]["optimal_cost"] += 1.0
        with pytest.raises(CacheCorruptionError, match="checksum"):
            load_cache(json.dumps(doc))

    def test_checksum_field_tampered(self, populated_cache):
        doc = json.loads(dump_cache(populated_cache))
        doc["checksum"] = "0" * 64
        with pytest.raises(CacheCorruptionError, match="checksum"):
            load_cache(json.dumps(doc))

    def test_missing_checksum(self, populated_cache):
        doc = json.loads(dump_cache(populated_cache))
        del doc["checksum"]
        with pytest.raises(CacheCorruptionError, match="payload/checksum"):
            load_cache(json.dumps(doc))

    def test_malformed_v1_payload_raises_corruption(self):
        # Well-formed JSON, legacy version, but the payload is missing
        # fields — must surface as CacheCorruptionError, not KeyError.
        with pytest.raises(CacheCorruptionError, match="malformed"):
            load_cache('{"version": 1, "plans": [{"plan_id": 0}], "instances": []}')

    def test_unsupported_version_stays_value_error(self):
        with pytest.raises(ValueError, match="version"):
            load_cache('{"version": 99}')


class TestSnapshotFileSafety:
    def test_corrupt_file_raises_and_is_left_intact(
        self, populated_cache, tmp_path
    ):
        path = tmp_path / "cache.json"
        snapshot = CacheSnapshot(str(path))
        snapshot.save(populated_cache)
        damaged = path.read_text()[:100]
        path.write_text(damaged)
        with pytest.raises(CacheCorruptionError):
            snapshot.load()
        # The failed load must not touch the file (forensics).
        assert path.read_text() == damaged

    def test_crashed_save_preserves_previous_snapshot(
        self, populated_cache, tmp_path, monkeypatch
    ):
        path = tmp_path / "cache.json"
        snapshot = CacheSnapshot(str(path))
        snapshot.save(populated_cache)
        before = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            snapshot.save(populated_cache)
        monkeypatch.undo()
        # Old snapshot intact and loadable; no temp litter left behind.
        assert path.read_bytes() == before
        assert snapshot.load().num_plans == populated_cache.num_plans
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_save_is_atomic_via_replace(self, populated_cache, tmp_path):
        path = tmp_path / "cache.json"
        snapshot = CacheSnapshot(str(path))
        size = snapshot.save(populated_cache)
        assert size == len(path.read_text())
        # Saving over an existing snapshot keeps it loadable throughout.
        snapshot.save(populated_cache)
        assert snapshot.load().num_plans == populated_cache.num_plans
