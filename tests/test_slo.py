"""SLO burn-rate engine: window differencing, alert latching, wiring.

Everything runs on a fake clock with hand-fed snapshots, so the
windows, burn thresholds, and fire/clear edges are exact.  The three
acceptance properties of the alerting recipe are pinned directly:
alerts fire during a sustained error burn, clear after recovery, and a
calm (or idle) window can never false-alert.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    BurnWindow,
    FakeClock,
    MetricsRegistry,
    Observability,
    SloEvaluator,
    certified_fraction_objective,
    cluster_objectives,
    default_objectives,
    lambda_compliance_objective,
    latency_objective,
)
from repro.obs.slo import (
    SLO_ALERT_ACTIVE,
    SLO_ALERTS_TOTAL,
    SLO_BURN_RATE,
    sum_counter,
    sum_histogram_under,
)

WINDOWS = (BurnWindow("fast", long_s=60.0, short_s=10.0, burn_threshold=6.0),)


def responses_snapshot(certified: int, uncertified: int = 0,
                       violations: int = 0, **labels) -> dict:
    series = [
        {"labels": {"outcome": "certified", **labels},
         "value": float(certified)},
        {"labels": {"outcome": "uncertified", **labels},
         "value": float(uncertified)},
    ]
    snap = {
        "repro_responses_total": {
            "kind": "counter", "help": "", "series": series,
        },
    }
    if violations:
        snap["repro_lambda_violations_total"] = {
            "kind": "counter", "help": "",
            "series": [{"labels": dict(labels),
                        "value": float(violations)}],
        }
    return snap


class TestSnapshotArithmetic:
    def test_sum_counter_filters_by_labels(self):
        snap = responses_snapshot(41, 2)
        assert sum_counter(snap, "repro_responses_total") == 43.0
        assert sum_counter(
            snap, "repro_responses_total", outcome="certified"
        ) == 41.0
        assert sum_counter(snap, "missing_family") == 0.0

    def test_sum_counter_source_filter(self):
        snap = {
            "repro_responses_total": {"kind": "counter", "series": [
                {"labels": {"source": "supervisor", "outcome": "certified"},
                 "value": 10.0},
                {"labels": {"source": "w0:0", "outcome": "certified"},
                 "value": 10.0},
            ]},
        }
        assert sum_counter(snap, "repro_responses_total") == 20.0
        assert sum_counter(
            snap, "repro_responses_total", source="supervisor"
        ) == 10.0

    def test_sum_histogram_under_uses_cumulative_buckets(self):
        snap = {
            "repro_serving_latency_seconds": {
                "kind": "histogram", "series": [{
                    "labels": {}, "count": 10, "sum": 1.0,
                    "buckets": [[0.1, 6], [0.25, 9], ["+Inf", 10]],
                }],
            },
        }
        good, total = sum_histogram_under(
            snap, "repro_serving_latency_seconds", 0.25
        )
        assert (good, total) == (9.0, 10.0)
        good, total = sum_histogram_under(
            snap, "repro_serving_latency_seconds", 0.05
        )
        assert good == 6.0  # first edge at/above the threshold answers

    def test_objective_factories_thread_where_filters(self):
        snap = {
            "repro_responses_total": {"kind": "counter", "series": [
                {"labels": {"source": "supervisor", "outcome": "certified"},
                 "value": 8.0},
                {"labels": {"source": "w0:0", "outcome": "certified"},
                 "value": 100.0},
            ]},
        }
        scoped = certified_fraction_objective(source="supervisor")
        assert scoped.sampler(snap) == (8.0, 8.0)
        objectives = cluster_objectives()
        names = [o.name for o in objectives]
        assert names == ["certified_fraction", "lambda_compliance", "latency"]
        assert objectives[0].sampler(snap) == (8.0, 8.0)


class TestBurnRateAlerting:
    def _evaluator(self):
        fake = FakeClock()
        registry = MetricsRegistry()
        evaluator = SloEvaluator(
            (certified_fraction_objective(target=0.9, windows=WINDOWS),),
            registry=registry,
            clock=fake.clock,
        )
        return evaluator, fake, registry

    def _drive(self, evaluator, fake, steps, certified_per_step,
               uncertified_per_step, state, step_s=5.0):
        for _ in range(steps):
            fake.advance(step_s)
            state["c"] += certified_per_step
            state["u"] += uncertified_per_step
            evaluator.evaluate(responses_snapshot(state["c"], state["u"]))

    def test_calm_traffic_never_alerts(self):
        evaluator, fake, _ = self._evaluator()
        state = {"c": 0, "u": 0}
        self._drive(evaluator, fake, 60, 10, 0, state)
        assert evaluator.active_alerts() == {"certified_fraction": False}
        assert evaluator.alerts_fired() == 0

    def test_zero_traffic_never_alerts(self):
        evaluator, fake, _ = self._evaluator()
        for _ in range(50):
            fake.advance(5.0)
            evaluator.evaluate(responses_snapshot(0, 0))
        assert evaluator.alerts_fired() == 0

    def test_alert_fires_during_burn_and_clears_after_recovery(self):
        evaluator, fake, registry = self._evaluator()
        state = {"c": 0, "u": 0}
        self._drive(evaluator, fake, 24, 10, 0, state)       # 2min calm
        assert evaluator.alerts_fired() == 0
        # Overload: everything uncertified → error rate 1.0, burn 10x
        # against a 0.1 budget; both windows exceed threshold 6.
        self._drive(evaluator, fake, 24, 0, 10, state)       # 2min burn
        assert evaluator.active_alerts()["certified_fraction"] is True
        assert evaluator.alerts_fired("certified_fraction") == 1
        assert registry.total(SLO_ALERT_ACTIVE, slo="certified_fraction") == 1
        # Recovery: certified again; the short window cools first and
        # the alert unlatches without waiting out the long window.
        self._drive(evaluator, fake, 6, 10, 0, state)        # 30s calm
        assert evaluator.active_alerts()["certified_fraction"] is False
        assert registry.total(SLO_ALERT_ACTIVE, slo="certified_fraction") == 0
        # The fire/clear pair is on the event log, in order.
        kinds = [e.kind for e in evaluator.alert_events]
        assert kinds == ["fire", "clear"]
        assert evaluator.alerts_fired() == 1
        assert registry.total(
            SLO_ALERTS_TOTAL, slo="certified_fraction"
        ) == 1

    def test_short_blip_does_not_fire_the_long_window(self):
        evaluator, fake, _ = self._evaluator()
        state = {"c": 0, "u": 0}
        self._drive(evaluator, fake, 24, 10, 0, state)
        # One bad 5s sample inside a healthy minute: the short window
        # burns but the long window absorbs it.
        self._drive(evaluator, fake, 1, 0, 10, state)
        self._drive(evaluator, fake, 12, 10, 0, state)
        assert evaluator.alerts_fired() == 0

    def test_min_interval_coalesces_samples(self):
        fake = FakeClock()
        evaluator = SloEvaluator(
            (certified_fraction_objective(windows=WINDOWS),),
            registry=MetricsRegistry(), clock=fake.clock,
            min_interval_s=1.0,
        )
        evaluator.evaluate(responses_snapshot(1, 0))
        fake.advance(0.2)
        evaluator.evaluate(responses_snapshot(2, 0))
        state = evaluator._states["certified_fraction"]
        assert len(state.samples) == 1

    def test_burn_gauges_are_exported(self):
        evaluator, fake, registry = self._evaluator()
        state = {"c": 0, "u": 0}
        self._drive(evaluator, fake, 4, 0, 10, state)
        assert registry.total(
            SLO_BURN_RATE, slo="certified_fraction", window="fast_short"
        ) > 0

    def test_report_shape(self):
        import json

        evaluator, fake, _ = self._evaluator()
        self._drive(evaluator, fake, 3, 5, 0, {"c": 0, "u": 0})
        report = evaluator.report()
        entry = report["certified_fraction"]
        assert entry["target"] == 0.9
        assert entry["alert_active"] is False
        assert "fast" in entry["windows"]
        json.dumps(report)


class TestObjectives:
    def test_lambda_compliance_counts_violations_as_errors(self):
        objective = lambda_compliance_objective()
        snap = responses_snapshot(100, 0, violations=2)
        good, total = objective.sampler(snap)
        assert (good, total) == (98.0, 100.0)

    def test_latency_objective_reads_histogram(self):
        objective = latency_objective(threshold_s=0.25)
        snap = {
            "repro_serving_latency_seconds": {
                "kind": "histogram", "series": [{
                    "labels": {}, "count": 100, "sum": 5.0,
                    "buckets": [[0.1, 90], [0.25, 97], ["+Inf", 100]],
                }],
            },
        }
        assert objective.sampler(snap) == (97.0, 100.0)

    def test_default_objectives_names(self):
        assert [o.name for o in default_objectives()] == [
            "certified_fraction", "lambda_compliance", "latency",
        ]


class TestObservabilityWiring:
    def test_attach_slo_and_report(self):
        fake = FakeClock()
        obs = Observability(clock=fake.clock, spans_enabled=False)
        obs.attach_slo((certified_fraction_objective(windows=WINDOWS),))
        for _ in range(5):
            obs.audit.response("t1", "certified")
            obs.audit.certificate("t1", "exact")
            fake.advance(1.0)
            obs.slo.evaluate()
        report = obs.report()
        assert "slo" in report
        assert report["slo"]["certified_fraction"]["total"] == 5.0
        assert report["slo"]["certified_fraction"]["alert_active"] is False

    def test_slo_gauges_land_in_prometheus_text(self):
        obs = Observability(spans_enabled=False)
        obs.attach_slo()
        obs.slo.evaluate()
        text = obs.prometheus()
        assert "repro_slo_burn_rate" in text
        assert "repro_slo_alert_active" in text


class TestSupervisorWiring:
    """The cluster supervisor evaluates over its merged snapshot."""

    def _cluster(self):
        from test_cluster_supervisor import FakeLauncher, FakeTemplate

        from repro.cluster import ClusterSupervisor, SupervisorPolicy
        from repro.cluster.transport import Ready

        clock = FakeClock()
        sup = ClusterSupervisor(
            [FakeTemplate(f"t{i}") for i in range(6)],
            num_workers=2, snapshot_dir="x",
            policy=SupervisorPolicy(), launcher=FakeLauncher(),
            clock=clock.clock,
        )
        sup.start(monitor=False)
        for wid in sup.workers:
            sup.response_q.put(Ready(worker_id=wid, incarnation=0))
        sup.pump()
        return sup, clock

    def _serve_one(self, sup, certified):
        from test_cluster_supervisor import mark_live

        from repro.cluster.transport import Response

        mark_live(sup, *sup.workers)
        name = next(iter(sup.templates))
        fut = sup.submit(name, (0.1, 0.2))
        rid = next(iter(sup._pending))
        pending = sup._pending[rid]
        sup.response_q.put(Response(
            request_id=rid, worker_id=pending.worker_id, incarnation=0,
            template_name=name, ok=True, certified=certified,
            certificate="exact" if certified else "uncertified",
            certified_bound=1.2 if certified else None,
        ))
        sup.pump()
        assert fut.result(timeout=1) is not None

    def test_cluster_slo_fires_on_uncertified_flood_and_clears(self):
        sup, clock = self._cluster()
        sup.attach_slo(
            (certified_fraction_objective(
                target=0.9, windows=WINDOWS, source="supervisor",
            ),),
            min_interval_s=0.0,
        )
        for _ in range(24):                     # calm: certified traffic
            clock.advance(5.0)
            self._serve_one(sup, certified=True)
            sup.tick()
        assert sup.obs.slo.alerts_fired() == 0
        for _ in range(24):                     # burn: all uncertified
            clock.advance(5.0)
            self._serve_one(sup, certified=False)
            sup.tick()
        assert sup.obs.slo.active_alerts()["certified_fraction"] is True
        for _ in range(6):                      # recovery
            clock.advance(5.0)
            self._serve_one(sup, certified=True)
            sup.tick()
        assert sup.obs.slo.active_alerts()["certified_fraction"] is False
        report = sup.cluster_report()
        assert report["slo"]["certified_fraction"]["alerts_fired"] == 1
        # The evaluator's gauges ride the supervisor registry into the
        # merged exposition.
        assert 'repro_slo_alert_active{slo="certified_fraction"' in (
            sup.prometheus()
        )

    def test_supervisor_scoped_objective_ignores_worker_series(self):
        from repro.cluster.transport import Heartbeat

        sup, clock = self._cluster()
        sup.attach_slo(
            (certified_fraction_objective(
                target=0.9, windows=WINDOWS, source="supervisor",
            ),),
            min_interval_s=0.0,
        )
        # A worker heartbeat carrying its own (advisory) response
        # counters must not leak into the supervisor-scoped objective.
        sup.response_q.put(Heartbeat(
            worker_id="w0", incarnation=0, seq=1, requests_served=50,
            optimizer_calls=0, outcomes={"certified": 50},
            registry={
                "repro_responses_total": {
                    "kind": "counter", "help": "", "series": [
                        {"labels": {"template": "t0",
                                    "outcome": "certified"},
                         "value": 50.0},
                    ],
                },
            },
            lambda_violations=0,
        ))
        sup.pump()
        clock.advance(5.0)
        self._serve_one(sup, certified=True)
        sup.tick()
        state = sup.obs.slo._states["certified_fraction"]
        assert state.samples[-1][2] == 1.0      # total: supervisor only


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
