"""Property and integration tests for the robust check modes (§11).

The hypothesis properties pin the load-bearing claims of the
uncertainty design: the adversarial corner really is the box maximum of
the G·L objective (so a corner check certifies the whole box), widening
a box can only weaken certification (never flip reject → certify), a
zero-width box reproduces point-mode decisions bit-for-bit, and a
robust certification implies the point check would also have certified.
The integration half covers CheckMode plumbing through GetPlan, SCR,
and the concurrent serving layer's brownout coverage-relaxation step.
"""

import math
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    adversarial_corner,
    compute_cost_gl,
    compute_gl,
    cost_corner,
    suboptimality_bound,
)
from repro.core.dynamic_lambda import PressureRelaxedLambda
from repro.core.get_plan import CheckKind, CheckMode, GetPlan, certificate_kind
from repro.core.plan_cache import InstanceEntry, PlanCache
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.engine.faults import NoisyEngine
from repro.obs import Observability
from repro.optimizer.optimizer import QueryOptimizer
from repro.query.instance import (
    QueryInstance,
    SelectivityVector,
    UncertainSelectivityVector,
)
from repro.serving.manager import ConcurrentPQOManager
from repro.serving.overload import BrownoutLevel, OverloadPolicy

RELTOL = 1e-9


def make_engine(toy_db, toy_template) -> EngineAPI:
    optimizer = QueryOptimizer(
        toy_template, toy_db.stats, toy_db.estimator, toy_db.cost_model
    )
    return EngineAPI(toy_template, optimizer, toy_db.estimator)


# ---------------------------------------------------------------------------
# Strategies: log-space boxes and anchors


def sel():
    return st.floats(min_value=1e-4, max_value=1.0)


def widths():
    return st.floats(min_value=1.0, max_value=50.0)


@st.composite
def boxes(draw, dims: int) -> UncertainSelectivityVector:
    triples = []
    for _ in range(dims):
        point = draw(sel())
        lo = max(point / draw(widths()), 1e-7)
        hi = min(point * draw(widths()), 1.0)
        triples.append((lo, point, hi))
    return UncertainSelectivityVector.from_bounds(triples)


@st.composite
def box_and_anchor(draw):
    dims = draw(st.integers(min_value=1, max_value=3))
    box = draw(boxes(dims))
    anchor = SelectivityVector.from_sequence(
        [draw(sel()) for _ in range(dims)]
    )
    return box, anchor


def box_corners(box: UncertainSelectivityVector):
    """Every corner of the box, plus its point and geometric midpoint."""
    corners = [
        SelectivityVector.from_sequence(combo)
        for combo in product(*zip(box.lo, box.hi))
    ]
    corners.append(box.point)
    corners.append(
        SelectivityVector.from_sequence(
            [math.sqrt(lo * hi) for lo, hi in zip(box.lo, box.hi)]
        )
    )
    return corners


# ---------------------------------------------------------------------------
# The corner lemmas (the soundness core of the robust checks)


class TestAdversarialCorner:
    @given(box_and_anchor())
    def test_corner_is_box_maximum_of_gl(self, pair):
        box, anchor = pair
        best = suboptimality_bound(anchor, adversarial_corner(anchor, box))
        for candidate in box_corners(box):
            other = suboptimality_bound(anchor, candidate)
            assert best >= other * (1.0 - RELTOL), (anchor, box, candidate)

    @given(box_and_anchor())
    def test_zero_width_corner_is_the_point(self, pair):
        box, anchor = pair
        exact = UncertainSelectivityVector.exact(box.point)
        assert adversarial_corner(anchor, exact) == box.point

    @given(box_and_anchor())
    def test_widening_never_shrinks_the_corner_bound(self, pair):
        box, anchor = pair
        narrow = suboptimality_bound(anchor, adversarial_corner(anchor, box))
        wide_box = box.widened(3.0)
        wide = suboptimality_bound(
            anchor, adversarial_corner(anchor, wide_box)
        )
        assert wide >= narrow * (1.0 - RELTOL)


class TestCostCorner:
    @given(box_and_anchor())
    def test_corner_is_box_maximum_of_cost_objective(self, pair):
        box, anchor = pair
        point = box.point
        g, l = compute_cost_gl(
            point, anchor, cost_corner(point, anchor, box)
        )
        best = g * l
        for candidate in box_corners(box):
            gg, ll = compute_cost_gl(point, anchor, candidate)
            assert best >= gg * ll * (1.0 - RELTOL), (anchor, box, candidate)

    @given(box_and_anchor())
    def test_zero_width_reproduces_point_cost_factors(self, pair):
        """At a zero-width box the transport factor G(point→corner) is 1
        and L(anchor→corner) is bit-identical to the point check's L."""
        box, anchor = pair
        exact = UncertainSelectivityVector.exact(box.point)
        corner = cost_corner(box.point, anchor, exact)
        assert corner == box.point
        g, l = compute_cost_gl(box.point, anchor, corner)
        assert g == 1.0
        _, point_l = compute_gl(anchor, box.point)
        assert l == point_l  # exact, not approx


# ---------------------------------------------------------------------------
# GetPlan: mode resolution and decision equivalences


@pytest.fixture(scope="module")
def anchor_cache(toy_engine):
    """Cache with one anchor instance at (0.1, 0.1), S = 1."""
    cache = PlanCache()
    anchor_sv = SelectivityVector.of(0.1, 0.1)
    result = toy_engine.optimize(anchor_sv)
    plan = cache.add_plan(result.plan, result.shrunken_memo)
    cache.add_instance(InstanceEntry(
        sv=anchor_sv, plan_id=plan.plan_id,
        optimal_cost=result.cost, suboptimality=1.0,
    ))
    return cache


class TestResolveBox:
    def test_point_mode_has_no_box(self, anchor_cache):
        get_plan = GetPlan(cache=anchor_cache, lam=2.0)
        sv = SelectivityVector.of(0.2, 0.3)
        point, box = get_plan._resolve_box(sv, None)
        assert point == sv and box is None
        usv = UncertainSelectivityVector.from_bounds(
            [(0.1, 0.2, 0.4), (0.2, 0.3, 0.5)]
        )
        point, box = get_plan._resolve_box(usv, None)
        assert point == usv.point and box is None

    def test_robust_mode_promotes_plain_vector_to_exact_box(
        self, anchor_cache
    ):
        get_plan = GetPlan(cache=anchor_cache, lam=2.0, check_mode="robust")
        sv = SelectivityVector.of(0.2, 0.3)
        point, box = get_plan._resolve_box(sv, None)
        assert point == sv
        assert box.is_point and box.coverage == 1.0

    def test_probabilistic_mode_shrinks_to_target(self, anchor_cache):
        get_plan = GetPlan(
            cache=anchor_cache, lam=2.0,
            check_mode="probabilistic", target_coverage=0.9,
        )
        usv = UncertainSelectivityVector.from_bounds(
            [(0.1, 0.2, 0.4), (0.2, 0.3, 0.5)]
        )
        _, box = get_plan._resolve_box(usv, None)
        assert box.coverage == 0.9
        assert box.total_log_width < usv.total_log_width

    def test_per_call_coverage_only_ever_shrinks(self, anchor_cache):
        get_plan = GetPlan(
            cache=anchor_cache, lam=2.0,
            check_mode="probabilistic", target_coverage=0.9,
        )
        usv = UncertainSelectivityVector.from_bounds(
            [(0.1, 0.2, 0.4), (0.2, 0.3, 0.5)]
        )
        _, box = get_plan._resolve_box(usv, 0.7)
        assert box.coverage == 0.7
        # A per-call coverage above the mode's claim cannot widen it.
        _, box = get_plan._resolve_box(usv, 0.95)
        assert box.coverage == 0.9

    def test_target_coverage_validated(self, anchor_cache):
        with pytest.raises(ValueError, match="target_coverage"):
            GetPlan(cache=anchor_cache, lam=2.0, target_coverage=0.0)


class TestCertificateKind:
    def test_mapping(self):
        point_box = UncertainSelectivityVector.exact(
            SelectivityVector.of(0.2)
        )
        hard_box = UncertainSelectivityVector.from_bounds([(0.1, 0.2, 0.4)])
        soft_box = hard_box.for_coverage(0.9)
        assert certificate_kind(None) == "exact"
        assert certificate_kind(point_box) == "exact"
        assert certificate_kind(hard_box) == "robust"
        assert certificate_kind(soft_box) == "probabilistic"


class TestPointEquivalence:
    """A zero-width box reproduces point-mode decisions bit-for-bit."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_zero_width_probe_is_bitwise_point_probe(
        self, anchor_cache, toy_engine, s1, s2
    ):
        sv = SelectivityVector.of(s1, s2)
        point_gp = GetPlan(cache=anchor_cache, lam=2.0)
        robust_gp = GetPlan(cache=anchor_cache, lam=2.0, check_mode="robust")
        dp = point_gp.probe(sv, toy_engine.recost)
        dr = robust_gp.probe(
            UncertainSelectivityVector.exact(sv), toy_engine.recost
        )
        assert dr.plan_id == dp.plan_id
        assert dr.check is dp.check
        assert dr.g == dp.g and dr.l == dp.l
        assert dr.recost_ratio == dp.recost_ratio
        assert dr.recost_calls == dp.recost_calls
        if dp.hit:
            assert dr.certificate == "exact"
            # S = 1 here, so the corner bound is the same product.
            assert dr.bound_value == dp.inferred_suboptimality

    @settings(max_examples=60, deadline=None)
    @given(boxes(2))
    def test_robust_certification_implies_point_certification(
        self, anchor_cache, toy_engine, box
    ):
        robust_gp = GetPlan(cache=anchor_cache, lam=2.0, check_mode="robust")
        dr = robust_gp.probe(box, toy_engine.recost)
        if not dr.hit:
            return
        point_gp = GetPlan(cache=anchor_cache, lam=2.0)
        dp = point_gp.probe(box.point, toy_engine.recost)
        assert dp.hit
        assert dp.inferred_suboptimality <= dr.bound_value * (1.0 + RELTOL)

    @settings(max_examples=60, deadline=None)
    @given(boxes(2), st.floats(min_value=1.0, max_value=10.0))
    def test_widening_never_flips_reject_to_certify(
        self, anchor_cache, toy_engine, box, factor
    ):
        robust_gp = GetPlan(cache=anchor_cache, lam=2.0, check_mode="robust")
        narrow = robust_gp.probe(box, toy_engine.recost)
        if narrow.hit:
            return
        wide = robust_gp.probe(box.widened(factor), toy_engine.recost)
        assert not wide.hit
        assert wide.check is CheckKind.OPTIMIZER


# ---------------------------------------------------------------------------
# SCR integration


class TestSCRRobust:
    def test_check_mode_string_coerced(self, toy_db, toy_template):
        scr = SCR(make_engine(toy_db, toy_template), check_mode="robust")
        assert scr.check_mode is CheckMode.ROBUST
        assert scr.get_plan.check_mode is CheckMode.ROBUST

    def test_spatial_index_rejects_robust_mode(self, toy_db, toy_template):
        with pytest.raises(ValueError, match="spatial_index"):
            SCR(
                make_engine(toy_db, toy_template),
                spatial_index=True,
                check_mode="robust",
            )

    def test_synthetic_workload_matches_point_mode(self, toy_db, toy_template):
        """Synthetic instances carry exact boxes: robust mode must make
        the same decisions as point mode and claim exact certificates."""
        point_scr = SCR(make_engine(toy_db, toy_template), lam=2.0)
        robust_scr = SCR(
            make_engine(toy_db, toy_template), lam=2.0, check_mode="robust"
        )
        grid = [0.05, 0.08, 0.1, 0.15, 0.3, 0.5, 0.7, 0.9]
        for s1 in grid:
            for s2 in grid:
                inst = QueryInstance(
                    "toy_join", sv=SelectivityVector.of(s1, s2)
                )
                cp = point_scr.process(inst)
                cr = robust_scr.process(inst)
                assert cr.plan_signature == cp.plan_signature
                assert cr.check == cp.check
                assert cr.used_optimizer == cp.used_optimizer
                assert cr.certificate == "exact"
                assert cr.coverage == 1.0
                assert cr.certified_bound == pytest.approx(cp.certified_bound)
        assert robust_scr.optimizer_calls == point_scr.optimizer_calls

    def test_noisy_engine_yields_robust_certificates(self, toy_db, toy_template):
        obs = Observability()
        engine = NoisyEngine(
            make_engine(toy_db, toy_template), noise=0.3, seed=11
        )
        scr = SCR(engine, lam=2.0, check_mode="robust", obs=obs)
        choices = []
        for i in range(12):
            sv = SelectivityVector.of(0.2 + 0.001 * i, 0.3)
            choices.append(scr.process(QueryInstance("toy_join", sv=sv)))
        assert all(c.certificate == "robust" for c in choices)
        assert all(c.coverage == 1.0 for c in choices)
        hits = [c for c in choices if not c.used_optimizer]
        assert hits, "repeat near-identical instances must hit the cache"
        # A hit's corner-valid bound passed the check, so it is within λ;
        # none of the live audits may have flagged a violation.
        assert all(c.certified_bound <= 2.0 + RELTOL for c in hits)
        assert obs.audit.zero_violations
        # Certificate *counters* are serving-layer accounting (one per
        # served response); the serial technique only stamps choices.
        assert sum(obs.audit.certificate_totals().values()) == 0


# ---------------------------------------------------------------------------
# Serving layer: robust shards, pressure-λ ladder, coverage brownout


class TestPressureRelaxedLambda:
    def test_relaxes_only_at_configured_level(self):
        level = {"value": int(BrownoutLevel.NORMAL)}
        lam = PressureRelaxedLambda(
            2.0,
            level_provider=lambda: level["value"],
            relax_factor=1.5,
            relax_at_level=int(BrownoutLevel.LAMBDA_RELAXED),
        )
        assert lam(100.0) == 2.0
        # COVERAGE_RELAXED sits below the λ step: λ must stay put there.
        level["value"] = int(BrownoutLevel.COVERAGE_RELAXED)
        assert lam(100.0) == 2.0
        level["value"] = int(BrownoutLevel.LAMBDA_RELAXED)
        assert lam(100.0) == 3.0

    def test_relax_at_level_validated(self):
        with pytest.raises(ValueError, match="relax_at_level"):
            PressureRelaxedLambda(
                2.0, level_provider=lambda: 0, relax_at_level=0
            )


class TestServingRobust:
    def test_certificates_counted_exactly_once_per_response(
        self, toy_db, toy_template
    ):
        obs = Observability()
        params = [
            (500.0, 300.0), (520.0, 310.0), (500.0, 300.0),
            (800.0, 900.0), (510.0, 305.0),
        ]
        with ConcurrentPQOManager(
            database=toy_db, check_mode="robust", obs=obs
        ) as manager:
            manager.register(toy_template)
            assert manager.shard("toy_join").robust
            for p in params:
                choice = manager.process(
                    QueryInstance("toy_join", parameters=p)
                )
                assert choice.certificate == "robust"
            stats = manager.shard("toy_join").stats
        totals = obs.audit.certificate_totals()
        assert sum(totals.values()) == len(params)
        # Histogram intervals always have positive width, so every
        # certificate here is box-valid.
        assert totals["robust"] == len(params)
        assert sum(stats.certificate_counts.values()) == len(params)
        report = obs.report()
        assert report["certificates"] == totals

    def test_brownout_coverage_relaxation_downgrades_certificate(
        self, toy_db, toy_template
    ):
        obs = Observability()
        with ConcurrentPQOManager(
            database=toy_db,
            check_mode="robust",
            overload=OverloadPolicy(),
            obs=obs,
        ) as manager:
            manager.register(toy_template)
            inst = QueryInstance("toy_join", parameters=(500.0, 300.0))
            first = manager.process(inst)
            assert first.used_optimizer
            assert first.certificate == "robust"
            # Force the ladder onto its interval-relaxation step: hits
            # now probe the box shrunk to the brownout coverage and the
            # certificate is honestly downgraded — λ stays untouched.
            manager._overload_coordinator.controller.level = (
                BrownoutLevel.COVERAGE_RELAXED
            )
            second = manager.process(inst)
            assert not second.used_optimizer
            assert second.certified
            assert second.certificate == "probabilistic"
            assert second.coverage == pytest.approx(
                OverloadPolicy().brownout_coverage
            )
        totals = obs.audit.certificate_totals()
        assert totals["robust"] == 1
        assert totals["probabilistic"] == 1
