"""Consistent-hash ring: determinism, coverage, bounded reshuffling."""

from __future__ import annotations

import pytest

from repro.cluster.router import DEFAULT_VNODES, HashRing

NODES = ["w0", "w1", "w2", "w3"]
KEYS = [f"template_{i}" for i in range(40)]


def test_ring_is_deterministic_across_instances():
    a = HashRing(NODES)
    b = HashRing(list(NODES))
    assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]


def test_every_key_gets_a_valid_owner():
    ring = HashRing(NODES)
    for key in KEYS:
        assert ring.owner(key) in NODES


def test_partition_covers_every_key_exactly_once():
    ring = HashRing(NODES)
    parts = ring.partition(KEYS)
    assert set(parts) == set(NODES)
    flat = [k for keys in parts.values() for k in keys]
    assert sorted(flat) == sorted(KEYS)


def test_vnodes_spread_small_clusters():
    # With virtual nodes, no worker should own everything for a
    # reasonably sized key set — the whole point of vnodes.
    ring = HashRing(["w0", "w1"], vnodes=DEFAULT_VNODES)
    parts = ring.partition(KEYS)
    assert all(parts[n] for n in ("w0", "w1"))


def test_death_moves_only_the_dead_nodes_keys():
    ring = HashRing(NODES)
    before = {k: ring.owner(k) for k in KEYS}
    alive = [n for n in NODES if n != "w1"]
    after = {k: ring.owner(k, alive) for k in KEYS}
    for key in KEYS:
        if before[key] != "w1":
            # The consistent-hash property: survivors keep their keys.
            assert after[key] == before[key]
        else:
            assert after[key] in alive


def test_recovery_restores_the_original_mapping():
    ring = HashRing(NODES)
    before = {k: ring.owner(k) for k in KEYS}
    ring.owner("anything", ["w0", "w2"])  # some failover routing happened
    assert {k: ring.owner(k) for k in KEYS} == before


def test_cascading_deaths_until_total_outage():
    ring = HashRing(NODES)
    alive = list(NODES)
    while alive:
        assert ring.owner("template_7", alive) in alive
        alive.pop()
    with pytest.raises(LookupError):
        ring.owner("template_7", [])


def test_invalid_rings_rejected():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["w0", "w0"])
