"""Tests for plan search, cardinality derivation and the memo."""

import pytest

from repro.optimizer.cardinality import CardinalityModel
from repro.optimizer.memo import Memo, MemoGroup
from repro.optimizer.operators import PhysicalOp
from repro.optimizer.optimizer import QueryOptimizer
from repro.optimizer.plans import PlanNode
from repro.query.instance import SelectivityVector
from repro.query.template import AggregationKind, QueryTemplate, join, range_predicate
from repro.query.expressions import ColumnRef


class TestCardinalityModel:
    @pytest.fixture()
    def model(self, toy_db, toy_template):
        return CardinalityModel(toy_template, toy_db.stats, toy_db.estimator)

    def test_base_cardinality_scales_with_selectivity(self, model, toy_db):
        rows = toy_db.stats.row_count("orders")
        sv = SelectivityVector.of(0.1, 1.0)
        assert model.base_cardinality("orders", sv) == pytest.approx(rows * 0.1)

    def test_unfiltered_table_full_cardinality(self, model, toy_db):
        sv = SelectivityVector.of(1.0, 0.01)
        assert model.base_cardinality("orders", sv) == pytest.approx(
            toy_db.stats.row_count("orders")
        )

    def test_fk_join_selectivity(self, model, toy_db, toy_template):
        edge = toy_template.joins[0]
        assert model.join_selectivity(edge) == pytest.approx(
            1.0 / toy_db.stats.row_count("cust")
        )

    def test_join_cardinality_fk_containment(self, model, toy_db, toy_template):
        # orders join cust on FK with full selectivities: every order
        # matches exactly one customer -> |orders|.
        sv = SelectivityVector.of(1.0, 1.0)
        left = model.base_cardinality("orders", sv)
        right = model.base_cardinality("cust", sv)
        card = model.join_cardinality(left, right, [toy_template.joins[0]])
        assert card == pytest.approx(toy_db.stats.row_count("orders"), rel=0.01)

    def test_group_count_capped_by_input(self, model):
        assert model.group_count("cust", "c_bal", 3.0) <= 3.0

    def test_cardinality_never_zero(self, model):
        sv = SelectivityVector.of(1e-6, 1e-6)
        assert model.base_cardinality("orders", sv) > 0


class TestMemo:
    def test_group_created_once(self):
        memo = Memo()
        g1 = memo.group(frozenset(["a"]))
        g2 = memo.group(frozenset(["a"]))
        assert g1 is g2
        assert memo.group_count == 1

    def test_offer_keeps_cheapest(self):
        group = MemoGroup(tables=frozenset(["a"]))
        cheap = PlanNode(op=PhysicalOp.SEQ_SCAN, table="a", cost=10.0)
        costly = PlanNode(op=PhysicalOp.SEQ_SCAN, table="a", cost=20.0)
        assert group.offer(None, costly)
        assert group.offer(None, cheap)
        assert not group.offer(None, costly)
        assert group.best(None).cost == 10.0

    def test_orders_tracked_separately(self):
        group = MemoGroup(tables=frozenset(["a"]))
        unordered = PlanNode(op=PhysicalOp.SEQ_SCAN, table="a", cost=10.0)
        ordered = PlanNode(op=PhysicalOp.INDEX_SCAN, table="a", cost=30.0)
        group.offer(None, unordered)
        group.offer("a.x", ordered)
        assert group.best("a.x").cost == 30.0
        # best(None) returns the cheapest across all orders.
        assert group.best(None).cost == 10.0

    def test_expression_count(self):
        group = MemoGroup(tables=frozenset(["a"]))
        node = PlanNode(op=PhysicalOp.SEQ_SCAN, table="a", cost=1.0)
        group.offer(None, node)
        group.offer(None, node)
        assert group.expressions_considered == 2


class TestPlanSearch:
    def test_single_table_template(self, toy_db, toy_single_table_template):
        opt = QueryOptimizer(toy_single_table_template, toy_db.stats,
                             toy_db.estimator, toy_db.cost_model)
        result = opt.optimize(SelectivityVector.of(0.5))
        assert result.plan.root.op in (PhysicalOp.SEQ_SCAN, PhysicalOp.INDEX_SCAN)
        assert result.cost > 0

    def test_join_produces_two_scans(self, toy_engine):
        result = toy_engine.optimize(SelectivityVector.of(0.3, 0.3))
        ops = result.plan.operators()
        scans = [op for op in ops if op.is_scan]
        assert len(scans) == 2
        joins = [op for op in ops if op.is_join]
        assert len(joins) == 1

    def test_plan_diversity_across_space(self, toy_engine):
        corners = [
            SelectivityVector.of(0.001, 0.001),
            SelectivityVector.of(0.9, 0.9),
            SelectivityVector.of(0.005, 0.9),
            SelectivityVector.of(0.9, 0.005),
        ]
        signatures = {toy_engine.optimize(sv).plan.signature() for sv in corners}
        assert len(signatures) >= 3

    def test_optimal_cost_monotone_samples(self, toy_engine):
        # Optimal cost should not decrease when all selectivities grow.
        costs = [
            toy_engine.optimize(SelectivityVector.of(s, s)).cost
            for s in (0.01, 0.1, 0.5, 1.0)
        ]
        assert all(a <= b * 1.001 for a, b in zip(costs, costs[1:]))

    def test_optimal_beats_recosted_alternatives(self, toy_engine):
        """DP optimality: the winner costs no more than any other
        instance's optimal plan re-costed here."""
        points = [
            SelectivityVector.of(0.001, 0.01),
            SelectivityVector.of(0.6, 0.8),
            SelectivityVector.of(0.01, 0.9),
        ]
        results = [toy_engine.optimize(sv) for sv in points]
        for i, sv in enumerate(points):
            best = results[i].cost
            for j, other in enumerate(results):
                alt = toy_engine.recost(other.shrunken_memo, sv)
                assert best <= alt * (1 + 1e-9)

    def test_aggregate_on_top(self, toy_db):
        template = QueryTemplate(
            name="toy_agg", database="toy", tables=["orders", "cust"],
            joins=[join("orders", "o_cust", "cust", "c_id")],
            parameterized=[range_predicate("orders", "o_date", "<=")],
            aggregation=AggregationKind.GROUP_BY,
            group_by=ColumnRef("cust", "c_bal"),
        )
        engine = toy_db.engine(template)
        result = engine.optimize(SelectivityVector.of(0.5))
        assert result.plan.root.op in (
            PhysicalOp.HASH_AGGREGATE, PhysicalOp.STREAM_AGGREGATE
        )

    def test_count_aggregate_cardinality_one(self, toy_db):
        template = QueryTemplate(
            name="toy_count", database="toy", tables=["orders"],
            parameterized=[range_predicate("orders", "o_amount", "<=")],
            aggregation=AggregationKind.COUNT,
        )
        engine = toy_db.engine(template)
        result = engine.optimize(SelectivityVector.of(0.3))
        assert result.plan.root.op is PhysicalOp.SCALAR_AGGREGATE
        assert result.plan.cardinality == pytest.approx(1.0)

    def test_order_by_forces_sort_or_order(self, toy_db):
        template = QueryTemplate(
            name="toy_sorted", database="toy", tables=["orders"],
            parameterized=[range_predicate("orders", "o_amount", "<=")],
            order_by=ColumnRef("orders", "o_date"),
        )
        engine = toy_db.engine(template)
        result = engine.optimize(SelectivityVector.of(0.5))
        ops = result.plan.operators()
        # Either an explicit sort or an index scan on o_date delivers order.
        has_sort = PhysicalOp.SORT in ops
        has_ordered_scan = any(
            n.op is PhysicalOp.INDEX_SCAN and n.index_column == "o_date"
            for n in result.plan.root.nodes()
        )
        assert has_sort or has_ordered_scan

    def test_memo_statistics_populated(self, toy_engine):
        result = toy_engine.optimize(SelectivityVector.of(0.2, 0.2))
        assert result.memo_groups >= 3          # 2 base + 1 join group
        assert result.memo_expressions > result.memo_groups
        assert result.shrunken_memo.node_count < result.memo_expressions

    def test_template_mismatch_rejected(self, toy_engine, toy_db,
                                        toy_single_table_template):
        other = QueryOptimizer(toy_single_table_template, toy_db.stats,
                               toy_db.estimator, toy_db.cost_model)
        result = other.optimize(SelectivityVector.of(0.5))
        with pytest.raises(ValueError, match="template"):
            toy_engine.optimizer.recost(
                result.shrunken_memo, SelectivityVector.of(0.5, 0.5)
            )


class TestFiveWayJoin:
    def test_tpch_five_way(self, tpch_db):
        from repro.workload.templates import tpch_templates

        template = next(
            t for t in tpch_templates() if t.name == "tpch_local_supplier"
        )
        engine = tpch_db.engine(template)
        result = engine.optimize(SelectivityVector.of(0.1, 0.2))
        scans = [op for op in result.plan.operators() if op.is_scan]
        # Five relations -> five leaf accesses (INLJ folds its inner leaf,
        # which still appears as an IndexScan child).
        assert len(scans) == 5
        joins = [op for op in result.plan.operators() if op.is_join]
        assert len(joins) == 4
