"""Tests for the equi-depth histogram (forward and inverse estimates)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selectivity.histogram import EquiDepthHistogram


@pytest.fixture(scope="module")
def uniform_hist() -> EquiDepthHistogram:
    rng = np.random.default_rng(0)
    return EquiDepthHistogram.from_values(rng.integers(0, 1000, 20_000), buckets=64)


@pytest.fixture(scope="module")
def skewed_hist() -> EquiDepthHistogram:
    rng = np.random.default_rng(0)
    ranks = np.arange(1, 201, dtype=float)
    w = ranks ** -1.2
    values = rng.choice(200, size=20_000, p=w / w.sum())
    return EquiDepthHistogram.from_values(values, buckets=32)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram.from_values(np.array([]))

    def test_depths_sum_to_total(self, uniform_hist):
        assert uniform_hist.depths.sum() == uniform_hist.total

    def test_boundaries_sorted(self, uniform_hist):
        assert (np.diff(uniform_hist.boundaries) >= 0).all()

    def test_constant_column(self):
        hist = EquiDepthHistogram.from_values(np.full(100, 7))
        assert hist.selectivity_le(7) == pytest.approx(1.0)
        assert hist.selectivity_le(6) < 0.01

    def test_single_value(self):
        hist = EquiDepthHistogram.from_values(np.array([5]))
        assert hist.total == 1

    def test_bucket_cap(self):
        hist = EquiDepthHistogram.from_values(np.arange(10), buckets=100)
        assert hist.bucket_count <= 10


class TestForwardEstimates:
    def test_below_min(self, uniform_hist):
        assert uniform_hist.selectivity_le(-5) < 0.001

    def test_above_max(self, uniform_hist):
        assert uniform_hist.selectivity_le(10_000) == 1.0

    def test_median_near_half(self, uniform_hist):
        assert uniform_hist.selectivity_le(500) == pytest.approx(0.5, abs=0.05)

    def test_monotone_in_value(self, uniform_hist):
        values = np.linspace(-10, 1100, 60)
        sels = [uniform_hist.selectivity_le(v) for v in values]
        assert all(a <= b + 1e-12 for a, b in zip(sels, sels[1:]))

    def test_ge_complements_le(self, uniform_hist):
        for v in (100, 400, 900):
            le = uniform_hist.selectivity_le(v)
            ge = uniform_hist.selectivity_ge(v)
            assert le + ge == pytest.approx(1.0, abs=0.05)

    def test_eq_small_for_wide_domain(self, uniform_hist):
        assert uniform_hist.selectivity_eq(500) < 0.01

    def test_matches_true_selectivity_uniform(self, uniform_hist):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 1000, 20_000)
        hist = EquiDepthHistogram.from_values(values, buckets=64)
        for v in (50, 250, 750):
            true = (values <= v).mean()
            assert hist.selectivity_le(v) == pytest.approx(true, abs=0.02)

    def test_matches_true_selectivity_skewed(self, skewed_hist):
        # Rebuild the same data to compare (fixture uses seed 0).
        rng = np.random.default_rng(0)
        ranks = np.arange(1, 201, dtype=float)
        w = ranks ** -1.2
        values = rng.choice(200, size=20_000, p=w / w.sum())
        for v in (0, 5, 50, 150):
            true = (values <= v).mean()
            assert skewed_hist.selectivity_le(v) == pytest.approx(true, abs=0.05)

    def test_floor_positive(self, uniform_hist):
        assert uniform_hist.selectivity_le(-1e9) > 0.0


class TestInverse:
    def test_roundtrip_uniform(self, uniform_hist):
        for s in (0.01, 0.1, 0.5, 0.9):
            v = uniform_hist.quantile(s)
            assert uniform_hist.selectivity_le(v) == pytest.approx(s, abs=0.03)

    def test_roundtrip_skewed(self, skewed_hist):
        # Discrete skewed data has a large point mass at the minimum
        # value; no parameter can achieve a selectivity below that mass,
        # so the roundtrip target is max(s, mass-at-min).
        floor = skewed_hist.selectivity_le(skewed_hist.min_value)
        for s in (0.05, 0.3, 0.7):
            v = skewed_hist.quantile(s)
            expected = max(s, floor)
            assert skewed_hist.selectivity_le(v) == pytest.approx(
                expected, abs=0.08
            )

    def test_clamps_out_of_range(self, uniform_hist):
        assert uniform_hist.quantile(-0.5) <= uniform_hist.quantile(0.0) + 1e-9
        assert uniform_hist.quantile(1.5) == pytest.approx(
            uniform_hist.max_value, rel=0.01
        )

    def test_monotone(self, uniform_hist):
        qs = [uniform_hist.quantile(s) for s in np.linspace(0, 1, 30)]
        assert all(a <= b + 1e-9 for a, b in zip(qs, qs[1:]))


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(st.integers(min_value=0, max_value=10_000), min_size=2,
                  max_size=400),
    value=st.integers(min_value=-100, max_value=10_100),
)
def test_property_selectivity_in_unit_interval(data, value):
    hist = EquiDepthHistogram.from_values(np.array(data), buckets=16)
    s = hist.selectivity_le(value)
    assert 0.0 < s <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(st.integers(min_value=0, max_value=1000), min_size=10,
                  max_size=500),
    s1=st.floats(min_value=0.0, max_value=1.0),
    s2=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_quantile_monotone(data, s1, s2):
    hist = EquiDepthHistogram.from_values(np.array(data), buckets=8)
    lo, hi = sorted((s1, s2))
    assert hist.quantile(lo) <= hist.quantile(hi) + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=5, max_size=300))
def test_property_depths_account_for_all_rows(data):
    hist = EquiDepthHistogram.from_values(np.array(data), buckets=12)
    assert hist.depths.sum() == len(data)
