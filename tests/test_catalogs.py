"""Tests for the four benchmark database catalogs and the registry."""

import pytest

from repro.catalog.realworld import rd1_schema, rd2_schema
from repro.catalog.registry import database_names, get_database
from repro.catalog.tpcds import tpcds_schema
from repro.catalog.tpch import tpch_schema


class TestTpchSchema:
    def test_eight_tables(self):
        schema = tpch_schema()
        assert len(schema.tables) == 8
        assert "lineitem" in schema.tables

    def test_row_ratios_follow_tpch(self):
        schema = tpch_schema()
        assert schema.table("lineitem").row_count == pytest.approx(
            4 * schema.table("orders").row_count, rel=0.01
        )
        assert schema.table("nation").row_count == 25
        assert schema.table("region").row_count == 5

    def test_scale_parameter(self):
        small = tpch_schema(scale=0.1)
        full = tpch_schema(scale=1.0)
        assert small.table("orders").row_count < full.table("orders").row_count

    def test_fk_graph_valid(self):
        schema = tpch_schema()
        schema.validate()
        assert schema.foreign_key_between("lineitem", "orders") is not None
        assert schema.foreign_key_between("orders", "customer") is not None

    def test_skew_applied_to_attribute_columns(self):
        schema = tpch_schema(skew=1.0)
        assert schema.table("lineitem").column("l_quantity").skew == 1.0
        # Keys stay unskewed.
        assert schema.table("orders").column("o_orderkey").skew == 0.0

    def test_indexes_on_predicate_columns(self):
        schema = tpch_schema()
        assert schema.has_index("lineitem", "l_shipdate")
        assert schema.has_index("orders", "o_custkey")


class TestTpcdsSchema:
    def test_facts_and_dimensions(self):
        schema = tpcds_schema()
        assert "store_sales" in schema.tables
        assert "catalog_sales" in schema.tables
        assert "date_dim" in schema.tables
        schema.validate()

    def test_star_fks(self):
        schema = tpcds_schema()
        assert schema.foreign_key_between("store_sales", "item") is not None
        assert schema.foreign_key_between("catalog_sales", "customer") is not None

    def test_demographics_snowflake(self):
        schema = tpcds_schema()
        assert schema.foreign_key_between(
            "customer", "customer_demographics") is not None


class TestRealWorldSchemas:
    def test_rd1_deep_chain(self):
        schema = rd1_schema()
        schema.validate()
        # tenant -> account -> contract -> order_hdr -> order_line: depth 5.
        chain = [
            ("account", "tenant"), ("contract", "account"),
            ("order_hdr", "contract"), ("order_line", "order_hdr"),
        ]
        for child, parent in chain:
            assert schema.foreign_key_between(child, parent) is not None

    def test_rd2_ten_metric_columns(self):
        schema = rd2_schema()
        schema.validate()
        fact = schema.table("fact_wide")
        metrics = [c for c in fact.columns if c.name.startswith("f_m")]
        assert len(metrics) == 10
        assert all(c.skew > 0 for c in metrics)

    def test_rd2_scale(self):
        assert (rd2_schema(scale=0.1).table("fact_wide").row_count
                < rd2_schema().table("fact_wide").row_count)


class TestRegistry:
    def test_names(self):
        assert database_names() == ["rd1", "rd2", "tpcds", "tpch"]

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown database"):
            get_database("oracle12c")

    def test_memoized(self):
        a = get_database("tpch", scale=0.1, seed=1)
        b = get_database("tpch", scale=0.1, seed=1)
        assert a is b

    def test_distinct_configs_distinct_instances(self):
        a = get_database("tpch", scale=0.1, seed=1)
        b = get_database("tpch", scale=0.1, seed=2)
        assert a is not b

    def test_databases_have_statistics(self):
        db = get_database("rd1", scale=0.1, seed=1)
        stats = db.stats.table("order_hdr")
        assert stats.row_count > 0
        assert "o_amount" in stats.columns
