"""Tests for the Recost API and shrunken memo (Appendix B mechanism)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.operators import PhysicalOp
from repro.query.instance import SelectivityVector

sel = st.floats(min_value=1e-4, max_value=1.0)


class TestRecostConsistency:
    """Recost of a plan must equal search's cost of that same plan."""

    def test_recost_matches_at_optimized_point(self, toy_engine):
        for sv in (
            SelectivityVector.of(0.01, 0.5),
            SelectivityVector.of(0.9, 0.9),
            SelectivityVector.of(0.001, 0.001),
        ):
            result = toy_engine.optimize(sv)
            assert toy_engine.recost(result.shrunken_memo, sv) == pytest.approx(
                result.cost, rel=1e-9
            )

    @settings(max_examples=30, deadline=None)
    @given(s1=sel, s2=sel)
    def test_property_recost_matches_everywhere(self, toy_engine, s1, s2):
        sv = SelectivityVector.of(s1, s2)
        result = toy_engine.optimize(sv)
        assert toy_engine.recost(result.shrunken_memo, sv) == pytest.approx(
            result.cost, rel=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(s1=sel, s2=sel, t1=sel, t2=sel)
    def test_property_recost_upper_bounds_optimal(self, toy_engine, s1, s2, t1, t2):
        """Any plan re-costed at q is >= the optimal cost at q."""
        plan = toy_engine.optimize(SelectivityVector.of(s1, s2)).shrunken_memo
        target = SelectivityVector.of(t1, t2)
        optimal = toy_engine.optimize(target).cost
        assert toy_engine.recost(plan, target) >= optimal * (1 - 1e-9)


class TestShrunkenMemo:
    def test_node_count_matches_plan(self, toy_engine):
        result = toy_engine.optimize(SelectivityVector.of(0.3, 0.3))
        plan_nodes = result.plan.node_count()
        # INLJ folds its inner leaf, so shrunken nodes <= plan nodes.
        assert result.shrunken_memo.node_count <= plan_nodes
        assert result.shrunken_memo.node_count >= 1

    def test_shrinking_reduces_memo_substantially(self, toy_engine):
        result = toy_engine.optimize(SelectivityVector.of(0.3, 0.3))
        # The paper reports ~70% reduction; ours should also drop a lot.
        assert result.shrunken_memo.node_count < 0.5 * result.memo_expressions

    def test_signature_preserved(self, toy_engine):
        result = toy_engine.optimize(SelectivityVector.of(0.3, 0.3))
        assert result.shrunken_memo.signature == result.plan.signature()

    def test_recost_varies_with_selectivity(self, toy_engine):
        result = toy_engine.optimize(SelectivityVector.of(0.2, 0.2))
        low = toy_engine.recost(result.shrunken_memo, SelectivityVector.of(0.01, 0.01))
        high = toy_engine.recost(result.shrunken_memo, SelectivityVector.of(0.9, 0.9))
        assert low < high

    def test_all_operator_kinds_recostable(self, tpch_db):
        """Cover merge joins, aggregates and sorts through real templates."""
        from repro.workload.templates import tpch_templates

        seen_ops: set[PhysicalOp] = set()
        for template in tpch_templates():
            engine = tpch_db.engine(template)
            for point in (0.01, 0.5):
                sv = SelectivityVector.from_sequence(
                    [point] * template.dimensions
                )
                result = engine.optimize(sv)
                seen_ops.update(result.plan.operators())
                other = SelectivityVector.from_sequence(
                    [min(1.0, point * 3)] * template.dimensions
                )
                recosted = engine.recost(result.shrunken_memo, other)
                assert recosted > 0
        assert any(op.is_join for op in seen_ops)
        assert any(op.is_scan for op in seen_ops)


class TestRecostSpeed:
    def test_recost_much_faster_than_optimize(self, tpch_db):
        """The premise of the paper's cost check: Recost << optimize."""
        from repro.workload.templates import tpch_templates

        template = next(
            t for t in tpch_templates() if t.name == "tpch_local_supplier"
        )
        engine = tpch_db.engine(template)
        engine.reset_counters()
        sv = SelectivityVector.of(0.1, 0.1)
        result = engine.optimize(sv)
        for i in range(50):
            engine.recost(
                result.shrunken_memo,
                SelectivityVector.of(0.1 + i * 0.015, 0.1),
            )
        counters = engine.counters
        assert counters.recost.calls == 50
        # At least an order of magnitude on this 5-way join.
        assert counters.recost_speedup > 10
