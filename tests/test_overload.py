"""Overload-protection tests: brownout hysteresis, deadlines, shedding.

Deterministic (seeded, fake-clocked where timing matters) coverage of
DESIGN.md §9:

* the brownout controller moves at most one level per evaluation tick,
  needs consecutive hot/calm ticks to move at all, and the dead band
  between thresholds prevents flapping;
* deadline budgets propagate: a nearly-expired budget never invokes
  the optimizer, an expired one resolves through the degraded path,
  and every degraded serve is ``certified=False`` with a traced
  reason code;
* bounded ingress resolves overflow in the submitting thread
  (rejection as last resort), and ``close(wait=False)`` resolves queued
  futures with :class:`ShutdownError` instead of dropping them.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.dynamic_lambda import PressureRelaxedLambda
from repro.engine.database import Database
from repro.engine.tracing import TraceEventKind, TraceLog
from repro.harness.metrics import ServiceLevelSummary
from repro.query.instance import QueryInstance, SelectivityVector
from repro.query.template import QueryTemplate, join, range_predicate
from repro.serving import (
    BrownoutController,
    BrownoutLevel,
    ConcurrentPQOManager,
    Deadline,
    OptimizerGate,
    OverloadCoordinator,
    OverloadPolicy,
    OverloadSignals,
    ShedError,
    ShutdownError,
)

from conftest import build_toy_schema

LAM = 2.0

#: A far-corner / near-corner vector pair: the selectivity check between
#: them fails by orders of magnitude, so serving one after caching the
#: other is a guaranteed miss whenever the cost check is disabled.
NEAR = SelectivityVector.of(0.9, 0.9)
FAR = SelectivityVector.of(1e-6, 1e-6)


def overload_template(name: str = "ov_t0") -> QueryTemplate:
    return QueryTemplate(
        name=name,
        database="toy",
        tables=["orders", "cust"],
        joins=[join("orders", "o_cust", "cust", "c_id")],
        parameterized=[
            range_predicate("orders", "o_date", "<="),
            range_predicate("orders", "o_date", ">="),
        ],
    )


def make_manager(policy=None, trace=None, max_workers=2, **scr_kwargs):
    db = Database.create(build_toy_schema(), seed=7)
    manager = ConcurrentPQOManager(
        database=db, max_workers=max_workers, overload=policy, trace=trace
    )
    template = overload_template()
    # max_recost_candidates=0 disables the cost check so NEAR/FAR
    # hit-or-miss behaviour is fully deterministic.
    manager.register(
        template, lam=LAM, max_recost_candidates=0, **scr_kwargs
    )
    return manager, template


def hot(miss_rate: float = 1.0) -> OverloadSignals:
    return OverloadSignals(
        queue_fraction=0.0, gate_wait_seconds=0.0, deadline_miss_rate=miss_rate
    )


def calm() -> OverloadSignals:
    return OverloadSignals(
        queue_fraction=0.0, gate_wait_seconds=0.0, deadline_miss_rate=0.0
    )


def dead_band(policy: OverloadPolicy) -> OverloadSignals:
    """Between the low and high thresholds: neither hot nor calm."""
    mid = (policy.deadline_miss_low + policy.deadline_miss_high) / 2
    return OverloadSignals(
        queue_fraction=0.0, gate_wait_seconds=0.0, deadline_miss_rate=mid
    )


# ---------------------------------------------------------------------------
# Deadline arithmetic


class TestDeadline:
    def test_budget_counts_down_on_the_given_clock(self):
        now = [100.0]
        d = Deadline.after(0.5, clock=lambda: now[0])
        assert d.remaining(now[0]) == pytest.approx(0.5)
        assert not d.expired(now[0])
        now[0] += 0.4
        assert d.remaining(now[0]) == pytest.approx(0.1)
        now[0] += 0.2
        assert d.expired(now[0])

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


# ---------------------------------------------------------------------------
# Optimizer gate


class TestOptimizerGate:
    def test_concurrency_limit_and_timeout_accounting(self):
        gate = OptimizerGate(concurrency=1)
        assert gate.acquire(timeout=0.01)
        assert not gate.acquire(timeout=0.01)  # slot held: must time out
        assert gate.timeouts == 1
        gate.release()
        assert gate.acquire(timeout=0.01)
        gate.release()
        assert gate.acquired == 2
        assert gate.wait_ema_seconds >= 0.0

    def test_token_bucket_bounds_rate(self):
        now = [0.0]
        gate = OptimizerGate(
            concurrency=8,
            tokens_per_second=1.0,
            burst=2,
            clock=lambda: now[0],
            sleep=lambda s: now.__setitem__(0, now[0] + s),
        )
        # Burst of 2 tokens, then the third must wait a full refill.
        assert gate.acquire(timeout=0.0)
        assert gate.acquire(timeout=0.0)
        assert not gate.acquire(timeout=0.0)   # no budget to wait for refill
        assert gate.acquire(timeout=2.0)       # refill funded by the budget
        assert gate.timeouts == 1


# ---------------------------------------------------------------------------
# Brownout hysteresis state machine


class TestBrownoutController:
    POLICY = OverloadPolicy(escalate_ticks=2, recover_ticks=3)

    def test_escalates_one_level_per_window_never_skipping(self):
        ctl = BrownoutController(self.POLICY)
        levels = [ctl.level]
        for _ in range(8):  # 4 windows of escalate_ticks=2 hot ticks
            ctl.evaluate(hot())
            levels.append(ctl.level)
        # One level per 2 hot ticks, saturating at SHED.
        assert levels == [
            BrownoutLevel.NORMAL, BrownoutLevel.NORMAL,
            BrownoutLevel.COVERAGE_RELAXED, BrownoutLevel.COVERAGE_RELAXED,
            BrownoutLevel.LAMBDA_RELAXED, BrownoutLevel.LAMBDA_RELAXED,
            BrownoutLevel.UNCERTIFIED, BrownoutLevel.UNCERTIFIED,
            BrownoutLevel.SHED,
        ]
        for t in ctl.transitions:
            assert t.current == t.previous + 1  # never skips a level
            assert t.reason.startswith("escalate:")

    def test_recovers_one_level_per_calm_window(self):
        ctl = BrownoutController(self.POLICY)
        for _ in range(8):
            ctl.evaluate(hot())
        assert ctl.level is BrownoutLevel.SHED
        for _ in range(12):  # 4 windows of recover_ticks=3 calm ticks
            ctl.evaluate(calm())
        assert ctl.level is BrownoutLevel.NORMAL
        downs = [t for t in ctl.transitions if t.current < t.previous]
        assert len(downs) == 4
        assert all(t.reason == "recover:calm" for t in downs)

    def test_dead_band_holds_level_without_flapping(self):
        ctl = BrownoutController(self.POLICY)
        for _ in range(4):
            ctl.evaluate(hot())
        assert ctl.level is BrownoutLevel.LAMBDA_RELAXED
        before = len(ctl.transitions)
        for _ in range(50):
            ctl.evaluate(dead_band(self.POLICY))
        assert ctl.level is BrownoutLevel.LAMBDA_RELAXED
        assert len(ctl.transitions) == before

    def test_alternating_signals_cannot_flap(self):
        """hot/calm alternation resets both streaks: no transition ever."""
        ctl = BrownoutController(self.POLICY)
        for i in range(40):
            ctl.evaluate(hot() if i % 2 == 0 else calm())
        assert ctl.level is BrownoutLevel.NORMAL
        assert ctl.transitions == []

    def test_transitions_are_traced_with_reason_codes(self):
        trace = TraceLog()
        ctl = BrownoutController(self.POLICY, trace=trace)
        for _ in range(2):
            ctl.evaluate(hot())
        events = list(trace.of_kind(TraceEventKind.OVERLOAD))
        assert len(events) == 1
        assert events[0].check == "brownout"
        assert events[0].detail == (
            "normal->coverage_relaxed:escalate:deadline_miss"
        )

    def test_pressure_driver_names_the_loudest_signal(self):
        signals = OverloadSignals(
            queue_fraction=0.9, gate_wait_seconds=0.0, deadline_miss_rate=0.0
        )
        pressure, driver = signals.pressure(self.POLICY)
        assert driver == "queue_depth"
        assert pressure > 1.0

    def test_coordinator_drives_ticks_from_completions(self):
        """The full loop: completion window -> signals -> transitions."""
        policy = OverloadPolicy(
            evaluate_every=1, escalate_ticks=2, recover_ticks=3
        )
        ov = OverloadCoordinator(policy)
        for _ in range(8):
            ov.note_completed(deadline_missed=True)
        assert ov.level is BrownoutLevel.SHED
        for _ in range(12):
            ov.note_completed(deadline_missed=False)
        assert ov.level is BrownoutLevel.NORMAL
        steps = [(t.previous, t.current) for t in ov.controller.transitions]
        assert all(abs(b - a) == 1 for a, b in steps)  # one level per move
        report = ov.report()
        assert report["brownout"] == "normal"
        assert report["transitions"] == 8

    def test_idle_gate_wait_signal_cannot_latch_brownout(self):
        """Once the level stops consulting the gate, the stale wait EMA
        reads as zero and recovery proceeds (no latch-in-SHED)."""
        policy = OverloadPolicy(
            evaluate_every=1, escalate_ticks=1, recover_ticks=1
        )
        ov = OverloadCoordinator(policy)
        for _ in range(4):
            assert ov.gate.acquire(timeout=0.0)
            ov.gate.release()
            ov.gate.wait_ema_seconds = 1.0  # pretend the waits were long
            ov.note_completed(deadline_missed=False)
        assert ov.level is BrownoutLevel.SHED
        # The gate is now idle (SHED makes no admission attempts): the
        # frozen EMA must not keep reading hot.
        for _ in range(4):
            ov.note_completed(deadline_missed=False)
        assert ov.level is BrownoutLevel.NORMAL
        assert ov.gate.wait_ema_seconds == 0.0


# ---------------------------------------------------------------------------
# λ pressure hook


class TestPressureRelaxedLambda:
    def test_neutral_at_normal_and_widened_under_pressure(self):
        level = [0]
        relax = PressureRelaxedLambda(
            2.0, level_provider=lambda: level[0], relax_factor=1.5, ceiling=2.5
        )
        assert relax(100.0) == 2.0          # behaviour-neutral at NORMAL
        level[0] = 1
        assert relax(100.0) == 2.5          # 3.0 clamped to the ceiling
        level[0] = 3
        assert relax(100.0) == 2.5

    def test_wraps_callable_base_schedules(self):
        level = [1]
        relax = PressureRelaxedLambda(
            lambda cost: 1.0 + cost, level_provider=lambda: level[0],
            relax_factor=2.0,
        )
        assert relax(1.0) == 4.0
        level[0] = 0
        assert relax(1.0) == 2.0

    def test_installed_on_register_with_overload_policy(self):
        manager, template = make_manager(
            policy=OverloadPolicy(lambda_relax_factor=1.5, lambda_ceiling=3.0)
        )
        try:
            get_plan = manager.state(template.name).scr.get_plan
            assert isinstance(get_plan.lambda_for, PressureRelaxedLambda)
            assert get_plan.lambda_for(123.0) == LAM  # NORMAL: base λ
            ctl = manager._overload_coordinator.controller
            ctl.level = BrownoutLevel.LAMBDA_RELAXED
            assert get_plan.lambda_for(123.0) == LAM * 1.5
        finally:
            manager.close()


# ---------------------------------------------------------------------------
# Deadline propagation through the serving path


class TestDeadlinePropagation:
    def test_expired_deadline_serves_cached_plan_uncertified(self):
        trace = TraceLog()
        manager, template = make_manager(
            policy=OverloadPolicy(evaluate_every=10**6), trace=trace
        )
        try:
            warm = manager.process(QueryInstance(template.name, sv=NEAR))
            assert warm.certified
            engine = manager.state(template.name).engine
            optimize_before = engine.counters.optimize.calls
            choice = manager.process(
                QueryInstance(template.name, sv=NEAR),
                deadline=Deadline.after(0.0),
            )
            assert choice.check == "overload"
            assert not choice.certified
            assert choice.plan_signature == warm.plan_signature
            # The expired budget funded zero engine work.
            assert engine.counters.optimize.calls == optimize_before
            shard = manager.shard(template.name)
            assert shard.stats.overload_serves == 1
            assert shard.stats.deadline_misses == 1
            events = [
                e for e in trace.of_kind(TraceEventKind.OVERLOAD)
                if e.check == "uncertified_serve"
            ]
            assert [e.detail for e in events] == ["deadline_expired"]
        finally:
            manager.close()

    def test_nearly_expired_budget_never_invokes_optimize(self):
        manager, template = make_manager(
            policy=OverloadPolicy(
                evaluate_every=10**6, min_optimize_budget=10.0
            )
        )
        try:
            manager.process(QueryInstance(template.name, sv=NEAR))
            engine = manager.state(template.name).engine
            optimize_before = engine.counters.optimize.calls
            recost_before = engine.counters.recost.calls
            # 1s remaining < min_optimize_budget=10s: a live deadline
            # whose budget cannot fund an optimizer call.
            choice = manager.process(
                QueryInstance(template.name, sv=FAR),
                deadline=Deadline.after(1.0),
            )
            assert choice.check == "overload"
            assert not choice.certified
            assert engine.counters.optimize.calls == optimize_before
            assert engine.counters.recost.calls == recost_before
        finally:
            manager.close()

    def test_expired_deadline_with_empty_cache_sheds(self):
        manager, template = make_manager(
            policy=OverloadPolicy(evaluate_every=10**6)
        )
        try:
            with pytest.raises(ShedError) as err:
                manager.process(
                    QueryInstance(template.name, sv=NEAR),
                    deadline=Deadline.after(0.0),
                )
            assert err.value.reason == "deadline_expired:no_cached_plan"
            assert err.value.template == template.name
            assert manager.shard(template.name).stats.shed == 1
        finally:
            manager.close()

    def test_deadlines_work_without_an_overload_policy(self):
        """Explicit budgets don't require the full overload subsystem."""
        manager, template = make_manager(policy=None)
        try:
            manager.process(QueryInstance(template.name, sv=NEAR))
            choice = manager.process(
                QueryInstance(template.name, sv=NEAR),
                deadline=Deadline.after(0.0),
            )
            assert choice.check == "overload"
            assert not choice.certified
        finally:
            manager.close()

    def test_default_deadline_attached_by_policy(self):
        manager, template = make_manager(
            policy=OverloadPolicy(
                evaluate_every=10**6, default_deadline_seconds=0.0
            )
        )
        try:
            manager.process(QueryInstance(template.name, sv=NEAR))
        except ShedError as err:
            # Zero default budget: first instance has nothing cached.
            assert err.reason == "deadline_expired:no_cached_plan"
        else:
            pytest.fail("zero default deadline must shed on a cold cache")
        finally:
            manager.close()


# ---------------------------------------------------------------------------
# Brownout levels on the serving path


class TestBrownoutServing:
    def test_uncertified_level_denies_optimize_and_serves_cache(self):
        trace = TraceLog()
        manager, template = make_manager(
            policy=OverloadPolicy(evaluate_every=10**6), trace=trace
        )
        try:
            manager.process(QueryInstance(template.name, sv=NEAR))
            engine = manager.state(template.name).engine
            optimize_before = engine.counters.optimize.calls
            manager._overload_coordinator.controller.level = (
                BrownoutLevel.UNCERTIFIED
            )
            choice = manager.process(QueryInstance(template.name, sv=FAR))
            assert choice.check == "overload"
            assert not choice.certified
            assert engine.counters.optimize.calls == optimize_before
            events = [
                e for e in trace.of_kind(TraceEventKind.OVERLOAD)
                if e.check == "uncertified_serve"
            ]
            assert [e.detail for e in events] == ["brownout_uncertified"]
        finally:
            manager.close()

    def test_shed_level_spends_zero_engine_calls(self):
        manager, template = make_manager(
            policy=OverloadPolicy(evaluate_every=10**6)
        )
        try:
            manager.process(QueryInstance(template.name, sv=NEAR))
            engine = manager.state(template.name).engine
            optimize_before = engine.counters.optimize.calls
            recost_before = engine.counters.recost.calls
            manager._overload_coordinator.controller.level = BrownoutLevel.SHED
            # A selectivity hit is free and still certified even in SHED.
            hit = manager.process(QueryInstance(template.name, sv=NEAR))
            assert hit.check == "selectivity"
            assert hit.certified
            # A miss is served from cache with no engine calls at all.
            miss = manager.process(QueryInstance(template.name, sv=FAR))
            assert miss.check == "overload"
            assert not miss.certified
            assert engine.counters.optimize.calls == optimize_before
            assert engine.counters.recost.calls == recost_before
        finally:
            manager.close()

    def test_shed_level_with_empty_cache_raises_shed_error(self):
        trace = TraceLog()
        manager, template = make_manager(
            policy=OverloadPolicy(evaluate_every=10**6), trace=trace
        )
        try:
            manager._overload_coordinator.controller.level = BrownoutLevel.SHED
            with pytest.raises(ShedError) as err:
                manager.process(QueryInstance(template.name, sv=NEAR))
            assert err.value.reason == "brownout_shed:no_cached_plan"
            events = [
                e for e in trace.of_kind(TraceEventKind.OVERLOAD)
                if e.check == "shed"
            ]
            assert [e.detail for e in events] == [
                "brownout_shed:no_cached_plan"
            ]
        finally:
            manager.close()

    def test_every_degraded_decision_has_a_traced_reason(self):
        """Shed + uncertified counts equal the traced overload decisions."""
        trace = TraceLog()
        manager, template = make_manager(
            policy=OverloadPolicy(evaluate_every=10**6), trace=trace
        )
        try:
            manager.process(QueryInstance(template.name, sv=NEAR))
            manager._overload_coordinator.controller.level = BrownoutLevel.SHED
            for v in (0.5, 0.25, 0.125):
                manager.process(
                    QueryInstance(template.name, sv=SelectivityVector.of(v, v))
                )
            shard = manager.shard(template.name)
            decisions = [
                e for e in trace.of_kind(TraceEventKind.OVERLOAD)
                if e.check in ("shed", "uncertified_serve")
            ]
            assert shard.stats.shed + shard.stats.overload_serves == len(decisions)
            assert all(e.detail for e in decisions)  # every one has a reason
        finally:
            manager.close()


# ---------------------------------------------------------------------------
# Bounded ingress and gate admission


class TestBoundedIngress:
    def test_queue_overflow_resolves_in_the_submitting_thread(self):
        trace = TraceLog()
        manager, template = make_manager(
            policy=OverloadPolicy(queue_limit=1, evaluate_every=10**6),
            trace=trace,
        )
        try:
            manager.process(QueryInstance(template.name, sv=NEAR))
            shard = manager.shard(template.name)
            ov = manager._overload_coordinator
            assert ov.try_enter_queue(shard.stats)  # occupy the only slot
            try:
                fut = manager.submit(QueryInstance(template.name, sv=FAR))
                assert fut.done()  # resolved synchronously, never queued
                choice = fut.result()
                assert choice.check == "overload"
                assert not choice.certified
                assert shard.stats.queue_rejects == 1
                rejects = [
                    e for e in trace.of_kind(TraceEventKind.OVERLOAD)
                    if e.check == "queue_reject"
                ]
                assert len(rejects) == 1
            finally:
                ov.exit_queue(shard.stats)
        finally:
            manager.close()

    def test_gate_timeout_degrades_instead_of_waiting(self):
        manager, template = make_manager(
            policy=OverloadPolicy(
                optimizer_concurrency=1,
                gate_timeout=0.005,
                evaluate_every=10**6,
            )
        )
        try:
            manager.process(QueryInstance(template.name, sv=NEAR))
            ov = manager._overload_coordinator
            assert ov.gate.acquire(timeout=0.01)  # hold the only slot
            try:
                choice = manager.process(QueryInstance(template.name, sv=FAR))
                assert choice.check == "overload"
                assert not choice.certified
                shard = manager.shard(template.name)
                assert shard.stats.gate_timeouts == 1
            finally:
                ov.release_optimize()
        finally:
            manager.close()

    def test_queue_depth_gauge_tracks_submissions(self):
        manager, template = make_manager(
            policy=OverloadPolicy(queue_limit=8, evaluate_every=10**6)
        )
        try:
            manager.process(QueryInstance(template.name, sv=NEAR))
            futs = [
                manager.submit(QueryInstance(template.name, sv=NEAR))
                for _ in range(4)
            ]
            for f in futs:
                f.result(timeout=10)
            shard = manager.shard(template.name)
            assert shard.stats.queue_depth == 0  # every slot released
            assert shard.stats.queue_high_water >= 1
            assert manager._overload_coordinator.pending == 0
        finally:
            manager.close()


# ---------------------------------------------------------------------------
# Shutdown semantics


class TestShutdown:
    def _blocked_manager(self):
        manager, template = make_manager(policy=None, max_workers=1)
        manager.process(QueryInstance(template.name, sv=NEAR))  # warm cache
        shard = manager.shard(template.name)
        release = threading.Event()
        started = threading.Event()
        orig = shard.process

        def blocking(instance, **kwargs):
            started.set()
            release.wait(timeout=10)
            return orig(instance, **kwargs)

        shard.process = blocking
        return manager, template, started, release

    def test_close_nowait_resolves_queued_futures_with_shutdown_error(self):
        manager, template, started, release = self._blocked_manager()
        try:
            first = manager.submit(QueryInstance(template.name, sv=NEAR))
            assert started.wait(timeout=10)
            queued = [
                manager.submit(QueryInstance(template.name, sv=NEAR))
                for _ in range(3)
            ]
            manager.close(wait=False)
            for fut in queued:
                # Resolved promptly — never parked on a dead executor.
                assert isinstance(
                    fut.exception(timeout=10), ShutdownError
                )
            assert isinstance(first.exception(timeout=10), ShutdownError)
        finally:
            release.set()

    def test_submit_after_close_returns_shutdown_error_future(self):
        manager, template = make_manager(policy=None)
        manager.process(QueryInstance(template.name, sv=NEAR))
        manager.close(wait=False)
        fut = manager.submit(QueryInstance(template.name, sv=NEAR))
        assert isinstance(fut.exception(timeout=10), ShutdownError)

    def test_close_wait_still_drains(self):
        manager, template = make_manager(policy=None)
        futs = [
            manager.submit(QueryInstance(template.name, sv=NEAR))
            for _ in range(8)
        ]
        manager.close(wait=True)
        assert all(f.result(timeout=10).plan_signature for f in futs)


# ---------------------------------------------------------------------------
# Reporting


class TestReporting:
    def test_serving_report_merges_health_columns(self):
        manager, template = make_manager(
            policy=OverloadPolicy(evaluate_every=10**6)
        )
        try:
            manager.process(QueryInstance(template.name, sv=NEAR))
            rows = manager.serving_report()
            assert rows[-1]["template"] == "TOTAL"
            for row in rows:
                for key in (
                    "breaker", "quarantined", "degraded",
                    "shed", "overload_serves", "deadline_miss",
                    "gate_timeouts", "queue_rejects", "queue_hw",
                ):
                    assert key in row
        finally:
            manager.close()

    def test_overload_report_surfaces_brownout_state(self):
        manager, template = make_manager(
            policy=OverloadPolicy(evaluate_every=10**6)
        )
        try:
            report = manager.overload_report()
            assert report["brownout"] == "normal"
            assert manager.brownout_level is BrownoutLevel.NORMAL
            manager._overload_coordinator.controller.level = BrownoutLevel.SHED
            assert manager.overload_report()["brownout"] == "shed"
        finally:
            manager.close()

    def test_overload_report_none_without_policy(self):
        manager, template = make_manager(policy=None)
        try:
            assert manager.overload_report() is None
            assert manager.brownout_level is None
        finally:
            manager.close()


# ---------------------------------------------------------------------------
# Service-level summary helper


class TestServiceLevelSummary:
    def test_outcome_breakdown_and_deadline_hit_rate(self):
        summary = ServiceLevelSummary.from_outcomes(
            latencies_s=[0.01, 0.02, 0.20, 0.03],
            certified_flags=[True, True, False, False],
            shed=1,
            deadline_seconds=0.05,
        )
        assert summary.total == 5
        assert summary.certified == 2
        assert summary.uncertified == 2
        assert summary.shed == 1
        assert summary.deadline_hit_rate == pytest.approx(3 / 5)
        assert summary.p99_in_deadline_ms <= 30.0 + 1e-6

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            ServiceLevelSummary.from_outcomes([0.1], [], shed=0)
