"""Exporter edge cases: empty registries, hostile label values,
readers racing writers.

The Prometheus text exposition (format 0.0.4) has exactly three
characters that must be escaped inside a label value — backslash,
double quote and newline — and a scrape endpoint that emits a raw one
corrupts the whole exposition for every family after it.  These tests
pin the escaping, the degenerate empty-registry output, and the
guarantee that ``snapshot_rows`` / ``to_prometheus`` stay consistent
while other threads mutate the registry mid-read.
"""

from __future__ import annotations

import threading

from repro.obs import MetricsRegistry, snapshot_rows, to_prometheus


class TestEmptyRegistry:
    def test_empty_registry_renders_empty_exposition(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert snapshot_rows(MetricsRegistry()) == []

    def test_family_without_children_renders_headers_only(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs", labels=("queue",))
        text = to_prometheus(registry)
        assert text == (
            "# HELP jobs_total Jobs\n"
            "# TYPE jobs_total counter\n"
        )

    def test_family_without_help_skips_help_line(self):
        registry = MetricsRegistry()
        registry.counter("bare_total", "", labels=())
        text = to_prometheus(registry)
        assert "# HELP" not in text
        assert "# TYPE bare_total counter" in text


class TestLabelEscaping:
    """Exposition format 0.0.4: ``\\`` -> ``\\\\``, ``"`` -> ``\\"``,
    newline -> ``\\n``, in that order (backslash first, or the escapes
    themselves get re-escaped)."""

    def _render(self, value: str) -> str:
        registry = MetricsRegistry()
        registry.counter("t_total", "t", labels=("v",)).labels(v=value).inc()
        return to_prometheus(registry)

    def test_quote_escaped(self):
        assert 't_total{v="say \\"hi\\""} 1' in self._render('say "hi"')

    def test_newline_escaped(self):
        text = self._render("line1\nline2")
        assert 't_total{v="line1\\nline2"} 1' in text
        # No raw newline may survive inside a sample line.
        sample = [l for l in text.splitlines() if not l.startswith("#")]
        assert sample == ['t_total{v="line1\\nline2"} 1']

    def test_backslash_escaped_before_other_escapes(self):
        # A literal backslash-n in the value must NOT collide with the
        # newline escape: it renders as \\n (escaped backslash + n),
        # while a real newline renders as \n.
        text = self._render("a\\nb")
        assert 't_total{v="a\\\\nb"} 1' in text

    def test_all_three_together(self):
        text = self._render('p\\q"r\ns')
        assert 't_total{v="p\\\\q\\"r\\ns"} 1' in text

    def test_histogram_le_labels_compose_with_escaping(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat_seconds", "h", labels=("op",), buckets=(1.0,)
        )
        hist.labels(op='read"fast"').observe(0.5)
        text = to_prometheus(registry)
        assert 'lat_seconds_bucket{op="read\\"fast\\"",le="1"} 1' in text
        assert 'lat_seconds_bucket{op="read\\"fast\\"",le="+Inf"} 1' in text


class TestConcurrentMutation:
    """Readers must never crash or tear while writers race them."""

    def test_snapshot_rows_under_concurrent_mutation(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "ops", labels=("worker",))
        hist = registry.histogram(
            "work_seconds", "h", labels=("worker",),
            buckets=(0.001, 0.01, 0.1, 1.0),
        )
        stop = threading.Event()
        errors: list[BaseException] = []
        writes_per_worker = 3000
        workers = 4

        def writer(wid: int) -> None:
            try:
                mine_c = counter.labels(worker=str(wid))
                mine_h = hist.labels(worker=str(wid))
                for i in range(writes_per_worker):
                    mine_c.inc()
                    mine_h.observe((i % 100) / 250.0)
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        def reader() -> None:
            try:
                while not stop.is_set():
                    rows = snapshot_rows(registry)
                    for row in rows:
                        if row["metric"] == "ops_total":
                            assert 0 <= row["value"] <= writes_per_worker
                        else:
                            assert 0 <= row["count"] <= writes_per_worker
                    text = to_prometheus(registry)
                    # Every emitted line is complete (no torn lines).
                    for line in text.splitlines():
                        assert line.startswith(("#", "ops_total", "work_seconds"))
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(workers)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads[:workers]:
            t.join()
        stop.set()
        for t in threads[workers:]:
            t.join()
        assert errors == []

        # Quiescent state is exact: nothing was lost to the races.
        rows = snapshot_rows(registry, names=["ops_total"])
        assert sorted(r["worker"] for r in rows) == ["0", "1", "2", "3"]
        assert all(r["value"] == writes_per_worker for r in rows)
        final = to_prometheus(registry)
        for w in range(workers):
            assert f'ops_total{{worker="{w}"}} {writes_per_worker}' in final
