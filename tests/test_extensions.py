"""Tests for the extension features: eviction policies, candidate
orderings, the spatial index, offline seeding and tracing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.get_plan import CandidateOrder
from repro.core.manage_cache import EvictionPolicy
from repro.core.plan_cache import InstanceEntry, PlanCache
from repro.core.scr import SCR
from repro.core.seeding import grid_points, random_points, seed_cache
from repro.core.spatial_index import InstanceGridIndex
from repro.engine.api import EngineAPI
from repro.engine.tracing import TraceEventKind, TraceLog
from repro.query.instance import QueryInstance, SelectivityVector
from repro.workload.generator import instances_for_template

sel = st.floats(min_value=1e-3, max_value=1.0)


def fresh_engine(db, template) -> EngineAPI:
    from repro.optimizer.optimizer import QueryOptimizer

    optimizer = QueryOptimizer(template, db.stats, db.estimator, db.cost_model)
    return EngineAPI(template, optimizer, db.estimator)


class TestEvictionPolicies:
    def _run(self, db, template, policy, instances):
        scr = SCR(
            fresh_engine(db, template), lam=1.1, plan_budget=2,
            lambda_r=1.0, eviction_policy=policy,
        )
        for inst in instances:
            scr.process(inst)
        return scr

    @pytest.mark.parametrize("policy", list(EvictionPolicy))
    def test_budget_respected_under_all_policies(self, toy_db, toy_template,
                                                 policy):
        instances = instances_for_template(toy_template, 120, seed=31)
        scr = self._run(toy_db, toy_template, policy, instances)
        assert scr.plans_cached <= 2
        assert scr.manage_cache.stats.plans_evicted >= 1

    def test_lru_clock_advances_on_hits(self, toy_db, toy_template):
        scr = SCR(fresh_engine(toy_db, toy_template), lam=2.0)
        scr.process(QueryInstance("t", sv=SelectivityVector.of(0.2, 0.2)))
        plan = scr.cache.plans()[0]
        tick_before = plan.last_used_tick
        scr.process(QueryInstance("t", sv=SelectivityVector.of(0.21, 0.21)))
        assert plan.last_used_tick > tick_before

    def test_lru_victim_is_least_recent(self, toy_engine):
        cache = PlanCache()
        res_a = toy_engine.optimize(SelectivityVector.of(0.001, 0.001))
        res_b = toy_engine.optimize(SelectivityVector.of(0.9, 0.9))
        plan_a = cache.add_plan(res_a.plan, res_a.shrunken_memo)
        plan_b = cache.add_plan(res_b.plan, res_b.shrunken_memo)
        cache.touch(plan_a.plan_id)
        assert cache.lru_plan().plan_id == plan_b.plan_id
        cache.touch(plan_b.plan_id)
        assert cache.lru_plan().plan_id == plan_a.plan_id


class TestCandidateOrders:
    @pytest.mark.parametrize("order", list(CandidateOrder))
    def test_all_orders_run_and_keep_guarantee(self, toy_db, toy_template,
                                               order):
        engine = fresh_engine(toy_db, toy_template)
        oracle = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=2.0, candidate_order=order)
        violations = 0
        instances = instances_for_template(toy_template, 100, seed=37)
        for inst in instances:
            choice = scr.process(inst)
            optimal = oracle.optimize(inst.selectivities)
            so = oracle.recost(
                choice.shrunken_memo, inst.selectivities) / optimal.cost
            if so > 2.0 * 1.001:
                violations += 1
        assert violations <= 2


class TestInstanceGridIndex:
    def _entry(self, sv, plan_id=0) -> InstanceEntry:
        return InstanceEntry(
            sv=sv, plan_id=plan_id, optimal_cost=1.0, suboptimality=1.0
        )

    def test_add_and_count(self):
        index = InstanceGridIndex()
        index.add(self._entry(SelectivityVector.of(0.1, 0.1)))
        index.add(self._entry(SelectivityVector.of(0.5, 0.5)))
        assert len(index) == 2
        assert index.occupied_cells == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            InstanceGridIndex(cell_log_width=0.0)

    def test_near_finds_close_entries(self):
        index = InstanceGridIndex()
        close = self._entry(SelectivityVector.of(0.10, 0.10))
        far = self._entry(SelectivityVector.of(0.0011, 0.9))
        index.add(close)
        index.add(far)
        found = list(index.near(SelectivityVector.of(0.12, 0.11), 0.7))
        assert close in found
        assert far not in found

    @settings(max_examples=60, deadline=None)
    @given(s1=sel, s2=sel, t1=sel, t2=sel,
           lam=st.floats(min_value=1.05, max_value=3.0))
    def test_property_near_superset_of_gl_ball(self, s1, s2, t1, t2, lam):
        """Soundness: any anchor with GL <= lam must be returned by
        near(query, ln lam)."""
        import math

        from repro.core.bounds import compute_gl

        index = InstanceGridIndex()
        anchor = self._entry(SelectivityVector.of(s1, s2))
        index.add(anchor)
        query = SelectivityVector.of(t1, t2)
        g, l = compute_gl(anchor.sv, query)
        if g * l <= lam:
            assert anchor in list(index.near(query, math.log(lam)))

    def test_remove_plan(self):
        index = InstanceGridIndex()
        index.add(self._entry(SelectivityVector.of(0.1, 0.1), plan_id=1))
        index.add(self._entry(SelectivityVector.of(0.1, 0.1), plan_id=2))
        removed = index.remove_plan(1)
        assert removed == 1
        assert len(index) == 1


class TestIndexedScr:
    def test_indexed_scr_keeps_guarantee(self, toy_db, toy_template):
        engine = fresh_engine(toy_db, toy_template)
        oracle = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=2.0, spatial_index=True)
        violations = 0
        instances = instances_for_template(toy_template, 120, seed=41)
        for inst in instances:
            choice = scr.process(inst)
            optimal = oracle.optimize(inst.selectivities)
            so = oracle.recost(
                choice.shrunken_memo, inst.selectivities) / optimal.cost
            if so > 2.0 * 1.001:
                violations += 1
        assert violations <= 2

    def test_index_stays_synced_with_cache(self, toy_db, toy_template):
        scr = SCR(fresh_engine(toy_db, toy_template), lam=1.1,
                  spatial_index=True, plan_budget=2, lambda_r=1.0)
        for inst in instances_for_template(toy_template, 100, seed=43):
            scr.process(inst)
        assert len(scr.get_plan.index) == scr.cache.num_instances

    def test_indexed_numopt_close_to_plain(self, toy_db, toy_template):
        instances = instances_for_template(toy_template, 200, seed=47)
        results = {}
        for use_index in (False, True):
            scr = SCR(fresh_engine(toy_db, toy_template), lam=2.0,
                      spatial_index=use_index)
            for inst in instances:
                scr.process(inst)
            results[use_index] = scr.optimizer_calls
        # The index may lose some reuse (bounded neighborhood) but must
        # stay in the same ballpark.
        assert results[True] <= results[False] * 3 + 5


class TestSeeding:
    def test_grid_points_shape(self):
        points = grid_points(2, 4)
        assert len(points) == 16
        assert all(len(p) == 2 for p in points)
        with pytest.raises(ValueError):
            grid_points(2, 0)

    def test_random_points_deterministic(self):
        a = random_points(3, 10, seed=1)
        b = random_points(3, 10, seed=1)
        assert a == b

    def test_seeding_reduces_online_calls(self, toy_db, toy_template):
        instances = instances_for_template(toy_template, 150, seed=53)

        cold = SCR(fresh_engine(toy_db, toy_template), lam=2.0)
        for inst in instances:
            cold.process(inst)

        warm_engine = fresh_engine(toy_db, toy_template)
        warm = SCR(warm_engine, lam=2.0)
        report = seed_cache(warm, warm_engine, grid_points(2, 5))
        online_before = warm_engine.counters.optimize.calls
        for inst in instances:
            warm.process(inst)
        online_calls = warm_engine.counters.optimize.calls - online_before

        assert report.points_optimized > 0
        assert report.plans_seeded >= 1
        assert online_calls < cold.optimizer_calls

    def test_seeding_respects_redundancy_check(self, toy_db, toy_template):
        engine = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=2.0)
        report = seed_cache(scr, engine, grid_points(2, 6))
        # The lambda_r check must anorex the 36-point grid down well
        # below one plan per point.
        assert scr.cache.num_plans < report.points_optimized


class TestTraceLog:
    def test_record_and_counts(self):
        log = TraceLog()
        log.decision(0, "selectivity", "sigA")
        log.decision(1, "optimizer", "sigB")
        log.decision(2, "selectivity", "sigA")
        assert len(log) == 3
        assert log.check_counts() == {"selectivity": 2, "optimizer": 1}

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        log.decision(0, "cost", "sig")
        assert len(log) == 0

    def test_api_call_events(self):
        log = TraceLog()
        log.api_call(TraceEventKind.OPTIMIZE, 0, 0.01)
        log.api_call(TraceEventKind.RECOST, 0, 0.0001)
        assert len(list(log.of_kind(TraceEventKind.OPTIMIZE))) == 1

    def test_summary(self):
        log = TraceLog()
        log.decision(0, "cost", "sig", certified_bound=1.4)
        text = log.summary()
        assert "1 decisions" in text
        assert "cost: 1" in text
