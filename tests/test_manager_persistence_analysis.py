"""Tests for the PQO manager, cache persistence and plan-diagram tools."""

import pytest

from repro.analysis.plan_diagram import anorexic_reduction, compute_plan_diagram
from repro.core.manager import PQOManager, choose_lambda
from repro.core.persistence import CacheSnapshot, dump_cache, load_cache
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.query.instance import QueryInstance, SelectivityVector
from repro.query.template import QueryTemplate, range_predicate
from repro.workload.generator import instances_for_template


class TestChooseLambda:
    def test_trivial_optimization_gets_tight_lambda(self):
        assert choose_lambda(0.0001, 1_000_000) == pytest.approx(1.1, abs=0.01)

    def test_dominant_optimization_gets_loose_lambda(self):
        assert choose_lambda(10.0, 100.0) == pytest.approx(2.0)

    def test_zero_cost_defaults_loose(self):
        assert choose_lambda(0.1, 0.0) == 2.0

    def test_monotone_in_ratio(self):
        values = [choose_lambda(t, 50_000.0) for t in (0.0, 0.3, 0.6, 1.0, 5.0)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestPQOManager:
    @pytest.fixture()
    def second_template(self):
        return QueryTemplate(
            name="toy_scan2",
            database="toy",
            tables=["orders"],
            parameterized=[range_predicate("orders", "o_amount", "<=")],
        )

    def test_register_and_route(self, toy_db, toy_template, second_template):
        manager = PQOManager(database=toy_db)
        manager.register(toy_template)
        manager.register(second_template)
        choice = manager.process(QueryInstance(
            toy_template.name, sv=SelectivityVector.of(0.2, 0.2)))
        assert choice.used_optimizer
        choice2 = manager.process(QueryInstance(
            second_template.name, sv=SelectivityVector.of(0.3)))
        assert choice2.used_optimizer
        assert manager.total_optimizer_calls == 2

    def test_duplicate_registration_rejected(self, toy_db, toy_template):
        manager = PQOManager(database=toy_db)
        manager.register(toy_template)
        with pytest.raises(ValueError, match="already registered"):
            manager.register(toy_template)

    def test_unknown_template_rejected(self, toy_db):
        manager = PQOManager(database=toy_db)
        with pytest.raises(KeyError, match="not registered"):
            manager.process(QueryInstance("ghost", sv=SelectivityVector.of(0.5)))

    def test_global_budget_enforced(self, toy_db, toy_template, second_template):
        manager = PQOManager(
            database=toy_db, global_plan_budget=4, rebalance_every=20,
        )
        manager.register(toy_template, lambda_r=1.0)
        manager.register(second_template, lambda_r=1.0)
        for inst in instances_for_template(toy_template, 60, seed=3):
            manager.process(QueryInstance(toy_template.name, sv=inst.sv))
        for inst in instances_for_template(second_template, 60, seed=4):
            manager.process(QueryInstance(second_template.name, sv=inst.sv))
        assert manager.total_plans_cached <= 4

    def test_budget_shares_sum_within_global(self, toy_db, toy_template,
                                             second_template):
        manager = PQOManager(
            database=toy_db, global_plan_budget=5, rebalance_every=10,
        )
        manager.register(toy_template)
        manager.register(second_template)
        for inst in instances_for_template(toy_template, 40, seed=5):
            manager.process(QueryInstance(toy_template.name, sv=inst.sv))
        shares = [
            manager.state(t).budget
            for t in (toy_template.name, second_template.name)
        ]
        assert all(s >= 1 for s in shares)
        assert sum(shares) <= 5

    def test_report_rows(self, toy_db, toy_template):
        manager = PQOManager(database=toy_db)
        manager.register(toy_template, lam=1.5)
        manager.process(QueryInstance(
            toy_template.name, sv=SelectivityVector.of(0.2, 0.2)))
        rows = manager.report()
        assert rows[0]["template"] == toy_template.name
        assert rows[0]["instances"] == 1
        assert rows[0]["lambda"] == 1.5


class TestPersistence:
    def _populated_cache(self, toy_db, toy_template):
        from repro.optimizer.optimizer import QueryOptimizer

        optimizer = QueryOptimizer(
            toy_template, toy_db.stats, toy_db.estimator, toy_db.cost_model
        )
        engine = EngineAPI(toy_template, optimizer, toy_db.estimator)
        scr = SCR(engine, lam=2.0)
        for inst in instances_for_template(toy_template, 80, seed=7):
            scr.process(inst)
        return scr.cache, engine

    def test_round_trip_preserves_structure(self, toy_db, toy_template):
        cache, _ = self._populated_cache(toy_db, toy_template)
        restored = load_cache(dump_cache(cache))
        assert restored.num_plans == cache.num_plans
        assert restored.num_instances == cache.num_instances
        assert {p.signature for p in restored.plans()} == {
            p.signature for p in cache.plans()
        }

    def test_round_trip_preserves_recost_semantics(self, toy_db, toy_template):
        cache, engine = self._populated_cache(toy_db, toy_template)
        restored = load_cache(dump_cache(cache))
        sv = SelectivityVector.of(0.17, 0.23)
        for original in cache.plans():
            twin = restored.find_plan(original.signature)
            assert twin is not None
            a = engine.recost(original.shrunken_memo, sv)
            b = engine.recost(twin.shrunken_memo, sv)
            assert a == pytest.approx(b, rel=1e-12)

    def test_round_trip_preserves_instance_tuples(self, toy_db, toy_template):
        cache, _ = self._populated_cache(toy_db, toy_template)
        restored = load_cache(dump_cache(cache))
        originals = sorted(cache.instances(), key=lambda e: tuple(e.sv))
        restoreds = sorted(restored.instances(), key=lambda e: tuple(e.sv))
        for a, b in zip(originals, restoreds):
            assert a.sv == b.sv
            assert a.optimal_cost == pytest.approx(b.optimal_cost)
            assert a.suboptimality == pytest.approx(b.suboptimality)
            assert a.usage == b.usage

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            load_cache('{"version": 99}')

    def test_file_snapshot(self, toy_db, toy_template, tmp_path):
        cache, _ = self._populated_cache(toy_db, toy_template)
        snapshot = CacheSnapshot(str(tmp_path / "cache.json"))
        size = snapshot.save(cache)
        assert size > 0
        restored = snapshot.load()
        assert restored.num_plans == cache.num_plans

    def test_restored_cache_usable_by_scr(self, toy_db, toy_template):
        """A warm restart: SCR resumes with the restored cache and reuses
        its plans without new optimizer calls for covered instances."""
        from repro.optimizer.optimizer import QueryOptimizer

        cache, _ = self._populated_cache(toy_db, toy_template)
        restored = load_cache(dump_cache(cache))

        optimizer = QueryOptimizer(
            toy_template, toy_db.stats, toy_db.estimator, toy_db.cost_model
        )
        engine = EngineAPI(toy_template, optimizer, toy_db.estimator)
        scr = SCR(engine, lam=2.0)
        scr.cache = restored
        scr.get_plan.cache = restored
        scr.manage_cache.cache = restored
        anchor = next(restored.instances())
        choice = scr.process(QueryInstance(toy_template.name, sv=anchor.sv))
        assert not choice.used_optimizer


class TestPlanDiagram:
    @pytest.fixture(scope="class")
    def engine(self, toy_db, toy_template):
        from repro.optimizer.optimizer import QueryOptimizer

        optimizer = QueryOptimizer(
            toy_template, toy_db.stats, toy_db.estimator, toy_db.cost_model
        )
        return EngineAPI(toy_template, optimizer, toy_db.estimator)

    @pytest.fixture(scope="class")
    def diagram(self, engine):
        return compute_plan_diagram(engine, grid_size=10)

    def test_requires_2d(self, toy_db, toy_single_table_template):
        engine = toy_db.engine(toy_single_table_template)
        with pytest.raises(ValueError, match="2-d"):
            compute_plan_diagram(engine, grid_size=4)

    def test_diagram_has_multiple_plans(self, diagram):
        assert diagram.plan_count >= 3
        assert diagram.cells.shape == (10, 10)
        assert (diagram.costs > 0).all()

    def test_plan_areas_sum_to_grid(self, diagram):
        assert sum(diagram.plan_areas().values()) == 100

    def test_ascii_render_shape(self, diagram):
        text = diagram.render_ascii()
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 10 for line in lines)

    def test_anorexic_reduction_shrinks(self, diagram, engine):
        result = anorexic_reduction(diagram, engine, lam=1.5)
        assert result.plans_after <= result.plans_before
        assert result.max_cost_increase <= 1.5 * (1 + 1e-9)
        # The reduced diagram still covers every cell.
        assert result.diagram.cells.shape == diagram.cells.shape

    def test_reduction_lambda_one_is_lossless(self, diagram, engine):
        """λ = 1 permits only zero-cost-increase merges (exact ties)."""
        result = anorexic_reduction(diagram, engine, lam=1.0)
        assert result.plans_after <= result.plans_before
        assert result.max_cost_increase == pytest.approx(1.0)

    def test_reduction_validates_lambda(self, diagram, engine):
        with pytest.raises(ValueError):
            anorexic_reduction(diagram, engine, lam=0.9)

    def test_larger_lambda_reduces_at_least_as_much(self, diagram, engine):
        tight = anorexic_reduction(diagram, engine, lam=1.2)
        loose = anorexic_reduction(diagram, engine, lam=2.0)
        assert loose.plans_after <= tight.plans_after
