"""Tests for drifting workloads and SCR's adaptation to them."""

import pytest

from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.workload.drift import DriftingWorkload, Phase, seasonal_workload
from repro.workload.generator import DEFAULT_BANDS


def fresh_engine(db, template) -> EngineAPI:
    from repro.optimizer.optimizer import QueryOptimizer

    optimizer = QueryOptimizer(template, db.stats, db.estimator, db.cost_model)
    return EngineAPI(template, optimizer, db.estimator)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="length"):
            Phase(0, "small")
        with pytest.raises(ValueError, match="region"):
            Phase(10, "medium")
        with pytest.raises(ValueError, match="at least one phase"):
            DriftingWorkload(dimensions=2, phases=[])
        with pytest.raises(ValueError, match="out of range"):
            DriftingWorkload(dimensions=2, phases=[Phase(10, 5)])

    def test_lengths_and_boundaries(self):
        workload = DriftingWorkload(
            dimensions=2,
            phases=[Phase(30, "small"), Phase(20, "large"), Phase(10, 0)],
        )
        assert workload.total_length == 60
        assert workload.phase_boundaries() == [30, 50]

    def test_instances_follow_phase_regions(self):
        workload = DriftingWorkload(
            dimensions=2, phases=[Phase(25, "small"), Phase(25, "large")],
            seed=3,
        )
        instances = workload.instances()
        bands = DEFAULT_BANDS
        for inst in instances[:25]:
            assert all(s <= bands.small_high for s in inst.sv)
        for inst in instances[25:]:
            assert all(s >= bands.large_low for s in inst.sv)

    def test_dimension_phase(self):
        workload = DriftingWorkload(
            dimensions=3, phases=[Phase(20, 1)], seed=1,
        )
        bands = DEFAULT_BANDS
        for inst in workload.instances():
            assert inst.sv[1] >= bands.large_low
            assert inst.sv[0] <= bands.small_high
            assert inst.sv[2] <= bands.small_high

    def test_deterministic(self):
        a = seasonal_workload(2, phase_length=10, seed=5).instances()
        b = seasonal_workload(2, phase_length=10, seed=5).instances()
        assert [i.sv for i in a] == [i.sv for i in b]


class TestScrUnderDrift:
    def test_second_cycle_cheaper_than_first(self, toy_db, toy_template):
        """Seasonality: once both regimes' plans are cached, recurrence
        of a regime costs (almost) no new optimizer calls."""
        workload = seasonal_workload(2, phase_length=80, cycles=2, seed=7)
        engine = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=2.0)
        calls_per_phase = []
        boundaries = [0] + workload.phase_boundaries() + [workload.total_length]
        instances = workload.instances(toy_template.name)
        for start, end in zip(boundaries, boundaries[1:]):
            before = scr.optimizer_calls
            for inst in instances[start:end]:
                scr.process(inst)
            calls_per_phase.append(scr.optimizer_calls - before)
        # Cycle 2 (phases 3 and 4) needs far fewer calls than cycle 1.
        first_cycle = calls_per_phase[0] + calls_per_phase[1]
        second_cycle = calls_per_phase[2] + calls_per_phase[3]
        assert second_cycle < 0.5 * first_cycle

    def test_phase_shift_causes_optimizer_burst(self, toy_db, toy_template):
        """A regime never seen before forces fresh optimizer calls."""
        workload = DriftingWorkload(
            dimensions=2,
            phases=[Phase(80, "small"), Phase(80, "large")],
            seed=11,
        )
        engine = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=2.0)
        instances = workload.instances(toy_template.name)
        for inst in instances[:80]:
            scr.process(inst)
        calls_phase1 = scr.optimizer_calls
        for inst in instances[80:]:
            scr.process(inst)
        calls_phase2 = scr.optimizer_calls - calls_phase1
        # The new regime needs at least one fresh plan.
        assert calls_phase2 >= 1

    def test_budgeted_scr_survives_drift_with_guarantee(
        self, toy_db, toy_template
    ):
        """Under a tight budget and drift, eviction happens but the
        λ guarantee holds for every processed instance."""
        workload = seasonal_workload(2, phase_length=60, cycles=2, seed=13)
        engine = fresh_engine(toy_db, toy_template)
        oracle = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=2.0, plan_budget=2, lambda_r=1.0)
        violations = 0
        for inst in workload.instances(toy_template.name):
            choice = scr.process(inst)
            truth = oracle.optimize(inst.selectivities)
            so = oracle.recost(
                choice.shrunken_memo, inst.selectivities) / truth.cost
            if so > 2.0 * 1.001:
                violations += 1
        assert scr.plans_cached <= 2
        assert violations <= workload.total_length * 0.02
