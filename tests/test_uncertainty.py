"""Unit tests for the selectivity error model (DESIGN.md §11).

Covers the shared clamping helper, the UncertainSelectivityVector
algebra (scaling, coverage, widening, containment), histogram and
estimator confidence intervals, the engine-API surface, the NoisyEngine
fault wrapper's honesty, and the resilience layer's degraded
(interval-widening) reads.
"""

import math

import numpy as np
import pytest

from repro.engine.api import EngineAPI
from repro.engine.faults import (
    FaultConfig,
    FaultInjector,
    FaultProfile,
    NoisyEngine,
    TransientEngineError,
)
from repro.engine.resilience import (
    ResiliencePolicy,
    ResilientEngineAPI,
    RetryPolicy,
)
from repro.optimizer.optimizer import QueryOptimizer
from repro.query.instance import (
    SELECTIVITY_FLOOR,
    QueryInstance,
    SelectivityVector,
    UncertainSelectivityVector,
    as_point,
    clamp_selectivity,
)
from repro.selectivity.histogram import EquiDepthHistogram

NO_SLEEP = lambda seconds: None  # noqa: E731

FAST_POLICY = ResiliencePolicy(
    retry=RetryPolicy(max_attempts=2, base_backoff=0.0, max_backoff=0.0),
)


def make_engine(toy_db, toy_template) -> EngineAPI:
    optimizer = QueryOptimizer(
        toy_template, toy_db.stats, toy_db.estimator, toy_db.cost_model
    )
    return EngineAPI(toy_template, optimizer, toy_db.estimator)


# ---------------------------------------------------------------------------
# The shared clamping helper


class TestClampSelectivity:
    def test_in_range_unchanged(self):
        assert clamp_selectivity(0.37) == 0.37

    def test_floor_applied(self):
        assert clamp_selectivity(0.0) == SELECTIVITY_FLOOR
        assert clamp_selectivity(-5.0) == SELECTIVITY_FLOOR

    def test_ceiling_applied(self):
        assert clamp_selectivity(7.3) == 1.0

    def test_custom_floor(self):
        assert clamp_selectivity(0.0, floor=1e-12) == 1e-12


# ---------------------------------------------------------------------------
# UncertainSelectivityVector algebra


def usv(*triples, coverage=1.0) -> UncertainSelectivityVector:
    return UncertainSelectivityVector.from_bounds(list(triples), coverage)


class TestUncertainSelectivityVector:
    def test_exact_is_zero_width(self):
        box = UncertainSelectivityVector.exact(SelectivityVector.of(0.2, 0.4))
        assert box.is_point
        assert box.total_log_width == 0.0
        assert box.coverage == 1.0
        assert as_point(box) == SelectivityVector.of(0.2, 0.4)

    def test_ordering_validated(self):
        with pytest.raises(ValueError, match="lo <= point <= hi"):
            usv((0.3, 0.2, 0.4))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            UncertainSelectivityVector(
                point=SelectivityVector.of(0.2, 0.4),
                lo=SelectivityVector.of(0.1),
                hi=SelectivityVector.of(0.5),
            )

    def test_coverage_validated(self):
        with pytest.raises(ValueError, match="coverage"):
            usv((0.1, 0.2, 0.4), coverage=0.0)
        with pytest.raises(ValueError, match="coverage"):
            usv((0.1, 0.2, 0.4), coverage=1.5)

    def test_log_widths(self):
        box = usv((0.1, 0.2, 0.4), (0.3, 0.3, 0.3))
        assert box.log_widths == pytest.approx((math.log(4.0), 0.0))
        assert box.total_log_width == pytest.approx(math.log(4.0))

    def test_contains(self):
        box = usv((0.1, 0.2, 0.4), (0.2, 0.3, 0.5))
        assert box.contains(SelectivityVector.of(0.25, 0.45))
        assert box.contains(SelectivityVector.of(0.1, 0.2))  # inclusive
        assert not box.contains(SelectivityVector.of(0.05, 0.3))

    def test_scaled_halves_log_width(self):
        box = usv((0.1, 0.2, 0.4))
        half = box.scaled(0.5)
        assert half.point == box.point
        assert half.total_log_width == pytest.approx(
            0.5 * box.total_log_width
        )
        assert half.coverage == pytest.approx(0.5)  # t**d with d=1

    def test_scaled_never_raises_coverage(self):
        box = usv((0.1, 0.2, 0.4), coverage=0.9)
        grown = box.scaled(2.0)
        assert grown.coverage == pytest.approx(0.9)
        assert grown.total_log_width > box.total_log_width

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            usv((0.1, 0.2, 0.4)).scaled(-1.0)

    def test_for_coverage_reports_exact_target(self):
        box = usv((0.05, 0.2, 0.5), (0.1, 0.3, 0.6))
        shrunk = box.for_coverage(0.8)
        assert shrunk.coverage == 0.8
        assert shrunk.total_log_width < box.total_log_width
        assert shrunk.point == box.point

    def test_for_coverage_at_or_above_claim_is_identity(self):
        box = usv((0.05, 0.2, 0.5), coverage=0.7)
        assert box.for_coverage(0.7) is box
        assert box.for_coverage(0.9) is box  # cannot promise more

    def test_for_coverage_point_box_is_identity(self):
        box = UncertainSelectivityVector.exact(SelectivityVector.of(0.2))
        assert box.for_coverage(0.5) is box

    def test_for_coverage_validated(self):
        with pytest.raises(ValueError, match="target coverage"):
            usv((0.1, 0.2, 0.4)).for_coverage(0.0)

    def test_widened_grows_both_sides(self):
        box = usv((0.1, 0.2, 0.4))
        wide = box.widened(2.0)
        assert wide.lo[0] == pytest.approx(0.05)
        assert wide.hi[0] == pytest.approx(0.8)
        assert wide.coverage == box.coverage
        assert wide.point == box.point

    def test_widened_respects_clamp_floor_guard(self):
        # A point at the floor: clamping lo cannot push it above point.
        tiny = SelectivityVector.of(SELECTIVITY_FLOOR / 2 + SELECTIVITY_FLOOR / 2)
        box = UncertainSelectivityVector.exact(
            SelectivityVector.of(SELECTIVITY_FLOOR)
        )
        wide = box.widened(10.0)
        assert wide.lo[0] <= wide.point[0] <= wide.hi[0]
        del tiny

    def test_widened_factor_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            usv((0.1, 0.2, 0.4)).widened(0.5)

    def test_as_point_passthrough_for_plain_vector(self):
        sv = SelectivityVector.of(0.3)
        assert as_point(sv) is sv


# ---------------------------------------------------------------------------
# Histogram confidence intervals


@pytest.fixture(scope="module")
def hist() -> EquiDepthHistogram:
    rng = np.random.default_rng(3)
    return EquiDepthHistogram.from_values(
        rng.integers(0, 1000, 10_000), buckets=32
    )


class TestHistogramIntervals:
    def test_interval_brackets_point(self, hist):
        for v in (50, 300, 500, 900):
            lo, point, hi = hist.interval_le(v)
            assert lo <= point <= hi
            assert point == pytest.approx(hist.selectivity_le(v))

    def test_ge_interval_brackets_point(self, hist):
        lo, point, hi = hist.interval_ge(400)
        assert lo <= point <= hi
        assert point == pytest.approx(hist.selectivity_ge(400))

    def test_eq_interval_brackets_point(self, hist):
        lo, point, hi = hist.interval_eq(123)
        assert lo <= point <= hi

    def test_sample_term_widens_monotonically(self, hist):
        hard = hist.interval_le(500, sample_z=0.0)
        z1 = hist.interval_le(500, sample_z=1.0)
        z3 = hist.interval_le(500, sample_z=3.0)
        assert hard[0] >= z1[0] >= z3[0]
        assert hard[2] <= z1[2] <= z3[2]

    def test_interval_endpoints_floored(self, hist):
        lo, point, hi = hist.interval_le(-100)
        assert lo >= SELECTIVITY_FLOOR and hi <= 1.0


# ---------------------------------------------------------------------------
# Estimator + engine API surface


class TestEstimatorUsv:
    def test_synthetic_instance_gets_exact_box(self, toy_db, toy_template):
        inst = QueryInstance("toy_join", sv=SelectivityVector.of(0.2, 0.3))
        box = toy_db.estimator.selectivity_vector_with_error(
            toy_template, inst
        )
        assert box.is_point
        assert box.point == SelectivityVector.of(0.2, 0.3)

    def test_parameterized_instance_brackets_point(self, toy_db, toy_template):
        inst = QueryInstance("toy_join", parameters=(500.0, 300.0))
        point = toy_db.estimator.selectivity_vector(toy_template, inst)
        box = toy_db.estimator.selectivity_vector_with_error(
            toy_template, inst
        )
        assert box.point == point
        assert box.contains(point)
        assert box.total_log_width > 0.0
        assert box.coverage == 1.0

    def test_engine_api_shares_selectivity_accounting(
        self, toy_db, toy_template
    ):
        engine = make_engine(toy_db, toy_template)
        inst = QueryInstance("toy_join", parameters=(500.0, 300.0))
        before = engine.counters.selectivity.calls
        box = engine.selectivity_vector_with_error(inst)
        assert engine.counters.selectivity.calls == before + 1
        assert box.contains(engine.selectivity_vector(inst))


# ---------------------------------------------------------------------------
# NoisyEngine: seeded multiplicative noise, honest intervals


class TestNoisyEngine:
    def test_negative_noise_rejected(self, toy_db, toy_template):
        with pytest.raises(ValueError, match="noise"):
            NoisyEngine(make_engine(toy_db, toy_template), noise=-0.1)

    def test_zero_noise_is_passthrough(self, toy_db, toy_template):
        engine = NoisyEngine(make_engine(toy_db, toy_template), noise=0.0)
        inst = QueryInstance("toy_join", sv=SelectivityVector.of(0.2, 0.3))
        assert engine.selectivity_vector(inst) == SelectivityVector.of(0.2, 0.3)
        assert engine.selectivity_vector_with_error(inst).is_point

    def test_seeded_determinism(self, toy_db, toy_template):
        inst = QueryInstance("toy_join", sv=SelectivityVector.of(0.2, 0.3))
        a = NoisyEngine(make_engine(toy_db, toy_template), noise=0.3, seed=7)
        b = NoisyEngine(make_engine(toy_db, toy_template), noise=0.3, seed=7)
        assert a.selectivity_vector(inst) == b.selectivity_vector(inst)
        assert a.selectivity_vector_with_error(inst) == (
            b.selectivity_vector_with_error(inst)
        )

    def test_interval_contains_true_vector(self, toy_db, toy_template):
        """Honesty: the noisy box always contains the inner estimate."""
        engine = NoisyEngine(make_engine(toy_db, toy_template), noise=0.4, seed=1)
        for i in range(50):
            s = 0.001 * (i + 1) * 17 % 1.0 or 0.5
            truth = SelectivityVector.of(
                clamp_selectivity(s), clamp_selectivity(1.0 - s / 2)
            )
            inst = QueryInstance("toy_join", sv=truth)
            box = engine.selectivity_vector_with_error(inst)
            assert box.contains(truth), (truth.values, box)
            assert box.coverage == 1.0  # uniform noise: hard band

    def test_optimize_and_recost_pass_through(self, toy_db, toy_template):
        inner = make_engine(toy_db, toy_template)
        engine = NoisyEngine(inner, noise=0.3, seed=2)
        result = engine.optimize(SelectivityVector.of(0.2, 0.3))
        assert result.cost == inner.optimize(SelectivityVector.of(0.2, 0.3)).cost
        assert engine.counters is inner.counters


# ---------------------------------------------------------------------------
# FaultInjector's uncertain-sVector corruption path


class TestFaultInjectorUsv:
    def test_clean_calls_pass_through(self, toy_db, toy_template):
        inj = FaultInjector(make_engine(toy_db, toy_template), FaultConfig())
        inst = QueryInstance("toy_join", sv=SelectivityVector.of(0.2, 0.3))
        assert inj.selectivity_vector_with_error(inst).is_point

    def test_nan_corruption_raises_validation_error(self, toy_db, toy_template):
        config = FaultConfig(selectivity=FaultProfile(corrupt_rate=1.0))
        inj = FaultInjector(make_engine(toy_db, toy_template), config, seed=3)
        inst = QueryInstance("toy_join", sv=SelectivityVector.of(0.2, 0.3))
        # No previous usv to serve stale: the corruption degenerates to
        # a NaN vector, surfaced as the validation ValueError the
        # resilience layer treats as a retryable failure.
        with pytest.raises(ValueError):
            inj.selectivity_vector_with_error(inst)

    def test_stale_corruption_replays_previous_box(self, toy_db, toy_template):
        config = FaultConfig(selectivity=FaultProfile(corrupt_rate=1.0))
        inj = FaultInjector(make_engine(toy_db, toy_template), config, seed=3)
        first = UncertainSelectivityVector.exact(SelectivityVector.of(0.2, 0.3))
        inj._last_usv = first
        inst = QueryInstance("toy_join", sv=SelectivityVector.of(0.6, 0.7))
        assert inj.selectivity_vector_with_error(inst) is first


# ---------------------------------------------------------------------------
# Resilience: degraded reads widen the interval instead of guessing


class FailAfterFirst:
    """Engine wrapper: the first usv call succeeds, later ones fail."""

    def __init__(self, engine):
        self.inner = engine
        self.calls = 0

    def selectivity_vector_with_error(self, instance):
        self.calls += 1
        if self.calls > 1:
            raise TransientEngineError("injected")
        return self.inner.selectivity_vector_with_error(instance)

    def __getattr__(self, name):
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)


class TestResilienceDegradedUsv:
    def _resilient(self, toy_db, toy_template):
        failing = FailAfterFirst(make_engine(toy_db, toy_template))
        return ResilientEngineAPI(failing, policy=FAST_POLICY, sleep=NO_SLEEP)

    def test_degraded_read_widens_last_good_box(self, toy_db, toy_template):
        engine = self._resilient(toy_db, toy_template)
        inst = QueryInstance("toy_join", parameters=(500.0, 300.0))
        good, degraded = engine.selectivity_vector_with_error_ex(inst)
        assert not degraded
        stale, degraded = engine.selectivity_vector_with_error_ex(inst)
        assert degraded
        assert stale.point == good.point
        # Strictly more pessimistic, same probability claim.
        assert stale.lo[0] <= good.lo[0] and stale.hi[0] >= good.hi[0]
        assert stale.total_log_width > good.total_log_width
        assert stale.coverage == good.coverage
        assert engine.counters.resilience.selectivity_fallbacks == 1

    def test_degraded_without_history_raises(self, toy_db, toy_template):
        from repro.engine.resilience import SelectivityUnavailableError

        failing = FailAfterFirst(make_engine(toy_db, toy_template))
        failing.calls = 10  # every call fails, nothing ever succeeded
        engine = ResilientEngineAPI(failing, policy=FAST_POLICY, sleep=NO_SLEEP)
        inst = QueryInstance("toy_join", parameters=(500.0, 300.0))
        with pytest.raises(SelectivityUnavailableError):
            engine.selectivity_vector_with_error(inst)

    def test_point_history_seeds_zero_width_stale_box(
        self, toy_db, toy_template
    ):
        """A point-vector history degrades to its widened exact box."""
        failing = FailAfterFirst(make_engine(toy_db, toy_template))
        failing.calls = 10
        engine = ResilientEngineAPI(failing, policy=FAST_POLICY, sleep=NO_SLEEP)
        engine._last_good_sv = SelectivityVector.of(0.2, 0.3)
        inst = QueryInstance("toy_join", parameters=(500.0, 300.0))
        stale, degraded = engine.selectivity_vector_with_error_ex(inst)
        assert degraded
        assert stale.point == SelectivityVector.of(0.2, 0.3)
        assert stale.total_log_width > 0.0  # widened, not a blind point
