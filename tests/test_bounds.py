"""Tests for G/L arithmetic and the BCG bounds (section 5 theory).

Besides unit checks, the Cost Bounding Lemma and sub-optimality theorem
are property-tested against the *real* optimizer: for plans whose
operator set respects the linear bounding functions, the bounds must
hold at arbitrary pairs of instances.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    BoundingFunction,
    LINEAR_BOUND,
    QUADRATIC_BOUND,
    compute_g,
    compute_gl,
    compute_l,
    cost_bounds,
    gl_log_distance,
    recost_suboptimality_bound,
    suboptimality_bound,
)
from repro.query.instance import SelectivityVector

sel = st.floats(min_value=1e-4, max_value=1.0)


class TestGL:
    def test_identity_vectors(self):
        a = SelectivityVector.of(0.3, 0.4)
        assert compute_g(a, a) == 1.0
        assert compute_l(a, a) == 1.0

    def test_pure_growth(self):
        a = SelectivityVector.of(0.1, 0.1)
        b = SelectivityVector.of(0.2, 0.3)
        assert compute_g(a, b) == pytest.approx(6.0)
        assert compute_l(a, b) == 1.0

    def test_pure_shrink(self):
        a = SelectivityVector.of(0.2, 0.3)
        b = SelectivityVector.of(0.1, 0.1)
        assert compute_g(a, b) == 1.0
        assert compute_l(a, b) == pytest.approx(6.0)

    def test_mixed_direction(self):
        a = SelectivityVector.of(0.1, 0.4)
        b = SelectivityVector.of(0.2, 0.1)
        g, l = compute_gl(a, b)
        assert g == pytest.approx(2.0)
        assert l == pytest.approx(4.0)

    def test_gl_pair_matches_individuals(self):
        a = SelectivityVector.of(0.1, 0.5, 0.9)
        b = SelectivityVector.of(0.3, 0.2, 0.9)
        g, l = compute_gl(a, b)
        assert g == pytest.approx(compute_g(a, b))
        assert l == pytest.approx(compute_l(a, b))

    def test_log_distance_is_ln_gl(self):
        a = SelectivityVector.of(0.1, 0.5)
        b = SelectivityVector.of(0.4, 0.1)
        g, l = compute_gl(a, b)
        assert gl_log_distance(a, b) == pytest.approx(math.log(g * l))


@settings(max_examples=150, deadline=None)
@given(st.lists(sel, min_size=1, max_size=8), st.lists(sel, min_size=1, max_size=8))
def test_property_g_and_l_at_least_one(xs, ys):
    if len(xs) != len(ys):
        return
    a, b = SelectivityVector(tuple(xs)), SelectivityVector(tuple(ys))
    g, l = compute_gl(a, b)
    assert g >= 1.0
    assert l >= 1.0


@settings(max_examples=150, deadline=None)
@given(st.lists(sel, min_size=1, max_size=6), st.lists(sel, min_size=1, max_size=6))
def test_property_gl_swaps_under_reversal(xs, ys):
    if len(xs) != len(ys):
        return
    a, b = SelectivityVector(tuple(xs)), SelectivityVector(tuple(ys))
    g_ab, l_ab = compute_gl(a, b)
    g_ba, l_ba = compute_gl(b, a)
    assert g_ab == pytest.approx(l_ba, rel=1e-9)
    assert l_ab == pytest.approx(g_ba, rel=1e-9)


class TestBoundingFunction:
    def test_rejects_sub_linear(self):
        with pytest.raises(ValueError):
            BoundingFunction(degree=0.5)

    def test_linear_bounds(self):
        assert LINEAR_BOUND.selectivity_bound(2.0, 3.0) == pytest.approx(6.0)
        assert LINEAR_BOUND.cost_bound(1.5, 3.0) == pytest.approx(4.5)

    def test_quadratic_bounds(self):
        assert QUADRATIC_BOUND.selectivity_bound(2.0, 3.0) == pytest.approx(36.0)
        assert QUADRATIC_BOUND.cost_bound(1.5, 3.0) == pytest.approx(13.5)

    def test_quadratic_looser_than_linear(self):
        a = SelectivityVector.of(0.1, 0.2)
        b = SelectivityVector.of(0.3, 0.1)
        assert suboptimality_bound(a, b, QUADRATIC_BOUND) >= suboptimality_bound(
            a, b, LINEAR_BOUND
        )


class TestBoundsAgainstRealOptimizer:
    """Lemma 1 and Theorem 1 checked against the actual engine."""

    def _bcg_safe(self, shrunken) -> bool:
        """Plans containing sort-based operators may exceed the linear
        bound (section 5.4); restrict lemma checks to linear operators."""
        from repro.optimizer.operators import PhysicalOp

        unsafe = {PhysicalOp.SORT, PhysicalOp.MERGE_JOIN}
        return not any(node.op in unsafe for node in shrunken.nodes)

    @settings(max_examples=40, deadline=None)
    @given(s1=sel, s2=sel, t1=sel, t2=sel)
    def test_cost_bounding_lemma(self, toy_engine, s1, s2, t1, t2):
        qe = SelectivityVector.of(s1, s2)
        qc = SelectivityVector.of(t1, t2)
        result = toy_engine.optimize(qe)
        if not self._bcg_safe(result.shrunken_memo):
            return
        lower, upper = cost_bounds(result.cost, qe, qc, LINEAR_BOUND)
        actual = toy_engine.recost(result.shrunken_memo, qc)
        # Fixed per-operator startup costs make growth strictly slower
        # than linear, so the upper bound holds exactly; the lower bound
        # holds up to the same constant effects.
        assert actual <= upper * (1 + 1e-6)
        assert actual >= lower * (1 - 1e-6) or actual >= result.cost / max(
            compute_l(qe, qc), 1.0
        ) * (1 - 1e-6)

    @settings(max_examples=40, deadline=None)
    @given(s1=sel, s2=sel, t1=sel, t2=sel)
    def test_suboptimality_theorem(self, toy_engine, s1, s2, t1, t2):
        qe = SelectivityVector.of(s1, s2)
        qc = SelectivityVector.of(t1, t2)
        res_e = toy_engine.optimize(qe)
        res_c = toy_engine.optimize(qc)
        if not (self._bcg_safe(res_e.shrunken_memo)
                and self._bcg_safe(res_c.shrunken_memo)):
            return
        actual_subopt = (
            toy_engine.recost(res_e.shrunken_memo, qc) / res_c.cost
        )
        assert actual_subopt <= suboptimality_bound(qe, qc) * (1 + 1e-6)

    @settings(max_examples=40, deadline=None)
    @given(s1=sel, s2=sel, t1=sel, t2=sel)
    def test_recost_bound_tighter_than_selectivity_bound(
        self, toy_engine, s1, s2, t1, t2
    ):
        qe = SelectivityVector.of(s1, s2)
        qc = SelectivityVector.of(t1, t2)
        result = toy_engine.optimize(qe)
        if not self._bcg_safe(result.shrunken_memo):
            return
        r = toy_engine.recost(result.shrunken_memo, qc) / result.cost
        rl = recost_suboptimality_bound(r, qe, qc)
        gl = suboptimality_bound(qe, qc)
        # R < G under BCG, hence R*L <= G*L (section 5.3).
        assert rl <= gl * (1 + 1e-6)

    @settings(max_examples=40, deadline=None)
    @given(s1=sel, s2=sel, t1=sel, t2=sel)
    def test_recost_bound_sound(self, toy_engine, s1, s2, t1, t2):
        qe = SelectivityVector.of(s1, s2)
        qc = SelectivityVector.of(t1, t2)
        res_e = toy_engine.optimize(qe)
        res_c = toy_engine.optimize(qc)
        if not (self._bcg_safe(res_e.shrunken_memo)
                and self._bcg_safe(res_c.shrunken_memo)):
            return
        cost_at_c = toy_engine.recost(res_e.shrunken_memo, qc)
        r = cost_at_c / res_e.cost
        actual_subopt = cost_at_c / res_c.cost
        assert actual_subopt <= recost_suboptimality_bound(r, qe, qc) * (1 + 1e-6)
