"""Golden plan-shape regression tests for the cost model.

PQO difficulty comes from plan diversity: different optimal plans in
different selectivity regions, with the crossovers the paper's §5.4
operator analysis implies (index vs sequential scans, index-nested-
loops vs hash joins).  These tests pin the qualitative behaviour so
cost-model changes that would collapse the plan space fail loudly.
"""

import pytest

from repro.optimizer.operators import PhysicalOp
from repro.query.instance import SelectivityVector
from repro.workload.generator import instances_for_template
from repro.workload.templates import seed_templates, tpch_templates


class TestAccessPathCrossover:
    def test_low_selectivity_prefers_index_scan(self, toy_engine):
        result = toy_engine.optimize(SelectivityVector.of(0.001, 0.001))
        scans = [n for n in result.plan.root.nodes() if n.op.is_scan]
        assert any(n.op is PhysicalOp.INDEX_SCAN for n in scans)

    def test_high_selectivity_prefers_seq_scan(self, toy_engine):
        result = toy_engine.optimize(SelectivityVector.of(0.95, 0.95))
        scans = [n for n in result.plan.root.nodes()
                 if n.op is PhysicalOp.SEQ_SCAN]
        assert scans, "full scans should win at ~full selectivity"


class TestJoinAlgorithmCrossover:
    def test_small_inputs_prefer_index_nested_loops(self, toy_engine):
        result = toy_engine.optimize(SelectivityVector.of(0.002, 0.002))
        joins = [op for op in result.plan.operators() if op.is_join]
        assert joins[0] in (
            PhysicalOp.INDEX_NESTED_LOOPS_JOIN, PhysicalOp.MERGE_JOIN
        )

    def test_large_inputs_prefer_hash_join(self, toy_engine):
        result = toy_engine.optimize(SelectivityVector.of(0.9, 0.9))
        joins = [op for op in result.plan.operators() if op.is_join]
        assert PhysicalOp.HASH_JOIN in joins

    def test_asymmetric_selectivity_flips_probe_side(self, toy_engine):
        """The filtered side should drive the join strategy: both
        asymmetric corners must differ from each other structurally."""
        a = toy_engine.optimize(SelectivityVector.of(0.005, 0.9))
        b = toy_engine.optimize(SelectivityVector.of(0.9, 0.005))
        assert a.plan.signature() != b.plan.signature()


class TestPlanDiversity:
    @pytest.mark.parametrize(
        "template",
        [t for t in tpch_templates() if len(t.tables) >= 2][:4],
        ids=lambda t: t.name,
    )
    def test_join_templates_have_diverse_plans(self, tpch_db, template):
        engine = tpch_db.engine(template)
        signatures = set()
        for inst in instances_for_template(template, 60, seed=3):
            signatures.add(engine.optimize(inst.selectivities).plan.signature())
        assert len(signatures) >= 3, (
            f"{template.name}: only {len(signatures)} distinct plans — "
            "the selectivity space has collapsed"
        )

    def test_stable_template_has_one_plan(self, tpch_db):
        template = next(
            t for t in tpch_templates() if t.name == "tpch_stable_scan"
        )
        engine = tpch_db.engine(template)
        signatures = {
            engine.optimize(inst.selectivities).plan.signature()
            for inst in instances_for_template(template, 40, seed=3)
        }
        assert len(signatures) == 1


class TestCostSanity:
    @pytest.mark.parametrize("template", seed_templates()[:8],
                             ids=lambda t: t.name)
    def test_costs_positive_and_finite(self, template):
        from repro.catalog.registry import get_database

        db = get_database(template.database, scale=0.2, seed=5)
        engine = db.engine(template)
        for point in (0.01, 0.5, 1.0):
            sv = SelectivityVector.from_sequence([point] * template.dimensions)
            result = engine.optimize(sv)
            assert 0 < result.cost < float("inf")
            assert 0 < result.plan.cardinality < float("inf")

    def test_join_cost_exceeds_scan_cost(self, toy_db, toy_template,
                                         toy_single_table_template):
        join_engine = toy_db.engine(toy_template)
        scan_engine = toy_db.engine(toy_single_table_template)
        join_cost = join_engine.optimize(SelectivityVector.of(0.5, 0.5)).cost
        scan_cost = scan_engine.optimize(SelectivityVector.of(0.5)).cost
        assert join_cost > scan_cost
