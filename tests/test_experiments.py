"""Smoke tests for every per-figure experiment (structure + sanity).

Each experiment is exercised at tiny scale; the assertions check the
*shape* of the output (the full-scale shape claims live in the
benchmarks and EXPERIMENTS.md).
"""

import pytest

from repro.harness.experiments import (
    ExperimentConfig,
    Experiments,
    standard_factories,
)
from repro.workload.templates import seed_templates


@pytest.fixture(scope="module")
def experiments() -> Experiments:
    return Experiments(ExperimentConfig.smoke())


@pytest.fixture(scope="module")
def small_template():
    return next(t for t in seed_templates() if t.dimensions == 2)


def test_standard_factories_lineup():
    factories = standard_factories(2.0)
    assert set(factories) == {
        "OptOnce", "PCM2", "Ellipse", "Density", "Ranges", "SCR2"
    }


def test_suite_results_cached(experiments):
    a = experiments.suite_results({"OptOnce": standard_factories()["OptOnce"]})
    b = experiments.suite_results({"OptOnce": standard_factories()["OptOnce"]})
    assert a["OptOnce"] is b["OptOnce"]


def test_suboptimality_distributions(experiments):
    dists = experiments.suboptimality_distributions(["OptOnce", "SCR2"])
    for name, series in dists.items():
        tcs = series["total_cost_ratio"]
        assert tcs == sorted(tcs)
        assert len(tcs) == len(series["mso"])
        assert all(m >= t - 1e9 for m, t in zip(series["mso"], tcs))


def test_lambda_sweep_monotone_numopt(experiments):
    rows = experiments.lambda_sweep(lambdas=(1.1, 2.0))
    assert rows[0]["lambda"] == 1.1
    # Larger lambda -> fewer optimizer calls and fewer plans on average.
    assert rows[1]["numopt_mean"] <= rows[0]["numopt_mean"] + 1e-9
    assert rows[1]["numplans_mean"] <= rows[0]["numplans_mean"] + 1e-9
    # TC stays below the bound.
    for row in rows:
        assert row["tc_mean"] <= row["lambda"]


def test_technique_aggregates_structure(experiments):
    rows = experiments.technique_aggregates()
    names = {row["technique"] for row in rows}
    assert "SCR2" in names and "OptOnce" in names
    scr = next(r for r in rows if r["technique"] == "SCR2")
    once = next(r for r in rows if r["technique"] == "OptOnce")
    # The paper's headline orderings at any scale:
    assert scr["mso_mean"] < once["mso_mean"]
    assert scr["numplans_mean"] >= 1.0


def test_numopt_vs_m_decreases(experiments, small_template):
    rows = experiments.numopt_vs_m(
        small_template, lengths=(50, 200),
        factories={"SCR2": lambda e: __import__("repro.core.scr",
                   fromlist=["SCR"]).SCR(e, lam=2.0)},
    )
    by_m = {row["m"]: row["numopt_pct"] for row in rows}
    assert by_m[200] <= by_m[50]


def test_numopt_vs_dimensions_structure(experiments):
    rows = experiments.numopt_vs_dimensions(dims=(2, 4), m=60)
    techs = {row["technique"] for row in rows}
    assert techs == {"SCR2", "PCM2"}
    for row in rows:
        assert 0 <= row["numopt_pct"] <= 100


def test_easy_sequence_comparison(experiments):
    rows = experiments.easy_sequence_comparison()
    # May legitimately be empty if no sequence is OptOnce-easy at smoke
    # scale; when present, every row carries the three fields.
    for row in rows:
        assert row["sequences"] >= 1
        assert row["numplans_mean"] >= 0


def test_plan_budget_sweep(experiments):
    rows = experiments.plan_budget_sweep(budgets=(None, 2))
    assert rows[0]["k"] == "unbounded"
    assert rows[1]["k"] == "2"
    assert rows[1]["numplans_mean"] <= 2.0 + 1e-9
    # Tight budgets cannot reduce optimizer calls.
    assert rows[1]["numopt_mean"] >= rows[0]["numopt_mean"] - 1e-9


def test_random_ordering_overheads(experiments):
    rows = experiments.random_ordering_overheads()
    assert {row["technique"] for row in rows} >= {"SCR2", "OptOnce"}


def test_recost_augmented_baselines(experiments):
    rows = experiments.recost_augmented_baselines()
    by_name = {row["technique"]: row for row in rows}
    # H.6: the redundancy check reduces stored plans for each heuristic.
    for base in ("Ellipse", "Density", "Ranges"):
        assert by_name[f"{base}+R"]["numplans_mean"] <= (
            by_name[base]["numplans_mean"] + 1e-9
        )


def test_dynamic_lambda_experiment(experiments, small_template):
    rows = experiments.dynamic_lambda_experiment(small_template, m=120)
    modes = {row["mode"] for row in rows}
    assert modes == {"static", "dynamic"}
    static = next(r for r in rows if r["mode"] == "static")
    dynamic = next(r for r in rows if r["mode"] == "dynamic")
    assert dynamic["numopt"] <= static["numopt"]


def test_lambda_r_sweep(experiments, small_template):
    rows = experiments.lambda_r_sweep(
        small_template, m=150, lam=1.2, lambda_rs=(1.0, None)
    )
    keep_all = rows[0]
    sqrt_rule = rows[1]
    assert sqrt_rule["numplans"] <= keep_all["numplans"]


def test_getplan_overheads(experiments, small_template):
    rows = experiments.getplan_overheads(small_template, m=150, lam=1.2)
    naive, pruned, full = rows
    assert pruned["max_recosts_per_getplan"] <= naive["max_recosts_per_getplan"]
    assert full["numplans"] <= pruned["numplans"]
