"""Tests for the oracle, runner and reporting."""

import pytest

from repro.core.scr import SCR
from repro.baselines import OptimizeAlways, OptimizeOnce
from repro.harness.oracle import Oracle
from repro.harness.reporting import format_series, format_table, percent
from repro.harness.runner import SequenceSpec, WorkloadRunner, run_sequence
from repro.query.instance import SelectivityVector
from repro.workload.generator import instances_for_template
from repro.workload.orderings import Ordering


class TestOracle:
    def test_optimal_is_memoized(self, toy_db, toy_template):
        oracle = Oracle(toy_db, toy_template)
        sv = SelectivityVector.of(0.2, 0.2)
        a = oracle.optimal(sv)
        b = oracle.optimal(sv)
        assert a is b
        assert oracle.optimizer_calls == 1

    def test_annotate(self, toy_db, toy_template):
        oracle = Oracle(toy_db, toy_template)
        instances = instances_for_template(toy_template, 10, seed=1)
        costs, sigs = oracle.annotate(instances)
        assert len(costs) == 10 and len(sigs) == 10
        assert all(c > 0 for c in costs)

    def test_distinct_plans_seen(self, toy_db, toy_template):
        oracle = Oracle(toy_db, toy_template)
        oracle.optimal(SelectivityVector.of(0.001, 0.001))
        oracle.optimal(SelectivityVector.of(0.9, 0.9))
        assert oracle.distinct_plans_seen == 2

    def test_plan_cost_uncounted(self, toy_db, toy_template):
        oracle = Oracle(toy_db, toy_template)
        point = oracle.optimal(SelectivityVector.of(0.2, 0.2))
        calls = oracle.optimizer_calls
        oracle.plan_cost(point.shrunken_memo, SelectivityVector.of(0.3, 0.3))
        assert oracle.optimizer_calls == calls


class TestRunSequence:
    def test_optimize_always_is_exactly_optimal(self, toy_db, toy_template):
        instances = instances_for_template(toy_template, 40, seed=2)
        result = run_sequence(toy_db, toy_template, instances, OptimizeAlways)
        assert result.mso == pytest.approx(1.0)
        assert result.total_cost_ratio == pytest.approx(1.0)
        assert result.num_opt == 40

    def test_optimize_once_single_call(self, toy_db, toy_template):
        instances = instances_for_template(toy_template, 40, seed=2)
        result = run_sequence(toy_db, toy_template, instances, OptimizeOnce)
        assert result.num_opt == 1
        assert result.num_plans == 1
        assert result.mso >= 1.0

    def test_scr_records_checks(self, toy_db, toy_template):
        instances = instances_for_template(toy_template, 60, seed=2)
        result = run_sequence(
            toy_db, toy_template, instances, lambda e: SCR(e, lam=2.0), lam=2.0
        )
        checks = {r.check for r in result.records}
        assert "optimizer" in checks
        assert "selectivity" in checks or "cost" in checks
        assert result.lam == 2.0


class TestWorkloadRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return WorkloadRunner(db_scale=0.2)

    @pytest.fixture(scope="class")
    def template(self):
        from repro.workload.templates import tpch_templates

        return next(t for t in tpch_templates() if t.dimensions == 2)

    def test_instances_cached(self, runner, template):
        a = runner.base_instances(template, 20, seed=0)
        b = runner.base_instances(template, 20, seed=0)
        assert a is b

    def test_oracle_shared(self, runner, template):
        assert runner.oracle(template) is runner.oracle(template)

    def test_orderings_are_permutations(self, runner, template):
        base = runner.base_instances(template, 30, seed=0)
        for ordering in Ordering:
            spec = SequenceSpec(template=template, m=30, ordering=ordering)
            ordered = runner.ordered_instances(spec)
            assert len(ordered) == 30
            assert {i.sv for i in ordered} == {i.sv for i in base}

    def test_decreasing_cost_order_verified(self, runner, template):
        spec = SequenceSpec(
            template=template, m=30, ordering=Ordering.DECREASING_COST
        )
        ordered = runner.ordered_instances(spec)
        oracle = runner.oracle(template)
        costs = [oracle.optimal(i.selectivities).optimal_cost for i in ordered]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_run_returns_labelled_result(self, runner, template):
        spec = SequenceSpec(template=template, m=25, ordering=Ordering.RANDOM)
        result = runner.run(spec, lambda e: SCR(e, lam=2.0), lam=2.0)
        assert result.technique == "SCR2"
        assert result.ordering == "random"
        assert result.m == 25


class TestReporting:
    def test_format_table_aligns(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_series(self):
        text = format_series("s", [1, 2], [0.5, 0.25])
        assert "1: 0.50" in text

    def test_percent(self):
        assert percent(12.345) == "12.3%"
