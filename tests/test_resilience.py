"""Unit tests for the engine resilience layer.

Covers the retry policy (deterministic backoff + jitter), the
count-based circuit breaker, fail-closed recost degradation, optimizer
fallback through SCR, sVector last-known-good reuse, fault-injector
determinism, and PQOManager quarantine of templates whose breaker
stays open.
"""

import math
import random

import pytest

from repro.core.manager import PQOManager
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.engine.faults import (
    EngineTimeoutError,
    FaultConfig,
    FaultInjector,
    FaultProfile,
    TransientEngineError,
)
from repro.engine.resilience import (
    BreakerState,
    CircuitBreaker,
    OptimizeUnavailableError,
    ResiliencePolicy,
    ResilientEngineAPI,
    RetryPolicy,
    SelectivityUnavailableError,
    resilient_engine_factory,
)
from repro.engine.tracing import TraceEventKind, TraceLog
from repro.optimizer.optimizer import QueryOptimizer
from repro.query.instance import QueryInstance, SelectivityVector
from repro.workload.generator import instances_for_template

NO_SLEEP = lambda seconds: None  # noqa: E731

#: Fast-failing policy used throughout: no real sleeping in tests.
FAST_POLICY = ResiliencePolicy(
    retry=RetryPolicy(max_attempts=3, base_backoff=0.0, max_backoff=0.0),
    breaker_failure_threshold=4,
    breaker_cooldown_calls=5,
)


def make_engine(toy_db, toy_template, trace=None) -> EngineAPI:
    optimizer = QueryOptimizer(
        toy_template, toy_db.stats, toy_db.estimator, toy_db.cost_model
    )
    return EngineAPI(toy_template, optimizer, toy_db.estimator, trace=trace)


class ScriptedFailures:
    """Wraps an engine; fails the raw calls whose indices are scripted."""

    def __init__(self, engine, fail_recost=(), fail_optimize=(),
                 fail_selectivity=(), error=TransientEngineError):
        self.inner = engine
        self.fail_recost = set(fail_recost)
        self.fail_optimize = set(fail_optimize)
        self.fail_selectivity = set(fail_selectivity)
        self.error = error
        self.recost_calls = 0
        self.optimize_calls = 0
        self.selectivity_calls = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def begin_instance(self, index):
        self.inner.begin_instance(index)

    def selectivity_vector(self, instance):
        self.selectivity_calls += 1
        if self.selectivity_calls in self.fail_selectivity:
            raise self.error("scripted sVector failure")
        return self.inner.selectivity_vector(instance)

    def optimize(self, sv):
        self.optimize_calls += 1
        if self.optimize_calls in self.fail_optimize:
            raise self.error("scripted optimize failure")
        return self.inner.optimize(sv)

    def recost(self, shrunken, sv):
        self.recost_calls += 1
        if self.recost_calls in self.fail_recost:
            raise self.error("scripted recost failure")
        return self.inner.recost(shrunken, sv)


class TestRetryPolicy:
    def test_backoff_deterministic_for_seed(self):
        policy = RetryPolicy(base_backoff=0.01, multiplier=2.0, jitter=0.5)
        a = [policy.backoff(i, random.Random(7)) for i in (1, 2, 3)]
        b = [policy.backoff(i, random.Random(7)) for i in (1, 2, 3)]
        assert a == b

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff=0.01, multiplier=2.0, max_backoff=0.03, jitter=0.0
        )
        rng = random.Random(0)
        assert policy.backoff(1, rng) == pytest.approx(0.01)
        assert policy.backoff(2, rng) == pytest.approx(0.02)
        assert policy.backoff(5, rng) == pytest.approx(0.03)  # capped

    def test_invalid_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        br = CircuitBreaker(failure_threshold=3, cooldown_calls=2)
        assert br.record_failure() is None
        assert br.record_failure() is None
        assert br.record_failure() == "closed->open"
        assert br.state is BreakerState.OPEN

    def test_short_circuits_then_probes(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_calls=2)
        br.record_failure()
        allowed, _ = br.allow()
        assert not allowed                       # rejection 1 of cooldown
        allowed, transition = br.allow()
        assert allowed and transition == "open->half-open"

    def test_probe_success_closes(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_calls=1)
        br.record_failure()
        br.allow()                               # -> half-open probe
        assert br.record_success() == "half-open->closed"
        assert br.state is BreakerState.CLOSED
        assert br.closes == 1

    def test_probe_failure_reopens(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_calls=1)
        br.record_failure()
        br.allow()
        assert br.record_failure() == "half-open->open"
        assert br.opens == 2

    def test_success_resets_failure_streak(self):
        br = CircuitBreaker(failure_threshold=2, cooldown_calls=1)
        br.record_failure()
        br.record_success()
        assert br.record_failure() is None       # streak restarted
        assert br.state is BreakerState.CLOSED


class TestResilientRecost:
    def _prepared(self, toy_db, toy_template, fail_recost, trace=None):
        engine = make_engine(toy_db, toy_template, trace=trace)
        flaky = ScriptedFailures(engine, fail_recost=fail_recost)
        resilient = ResilientEngineAPI(
            flaky, policy=FAST_POLICY, sleep=NO_SLEEP
        )
        result = engine.optimize(SelectivityVector.of(0.3, 0.3))
        return resilient, flaky, result.shrunken_memo

    def test_transient_failure_retried_to_success(self, toy_db, toy_template):
        resilient, flaky, memo = self._prepared(
            toy_db, toy_template, fail_recost={1}
        )
        cost = resilient.recost(memo, SelectivityVector.of(0.4, 0.4))
        assert math.isfinite(cost) and cost > 0
        assert flaky.recost_calls == 2           # 1 failure + 1 retry
        assert resilient.counters.resilience.retries == 1
        assert resilient.counters.resilience.faults_recost == 1

    def test_exhausted_retries_fail_closed(self, toy_db, toy_template):
        resilient, flaky, memo = self._prepared(
            toy_db, toy_template, fail_recost=range(1, 100)
        )
        cost = resilient.recost(memo, SelectivityVector.of(0.4, 0.4))
        assert cost == math.inf
        assert resilient.counters.resilience.recost_failed_closed == 1

    def test_garbage_costs_fail_closed(self, toy_db, toy_template):
        engine = make_engine(toy_db, toy_template)
        result = engine.optimize(SelectivityVector.of(0.3, 0.3))

        class Garbage:
            def __getattr__(self, name):
                return getattr(engine, name)

            def recost(self, shrunken, sv):
                return math.nan

        resilient = ResilientEngineAPI(
            Garbage(), policy=FAST_POLICY, sleep=NO_SLEEP
        )
        assert resilient.recost(
            result.shrunken_memo, SelectivityVector.of(0.4, 0.4)
        ) == math.inf
        assert resilient.counters.resilience.faults_recost == 3  # every attempt

    def test_breaker_opens_and_short_circuits(self, toy_db, toy_template):
        resilient, flaky, memo = self._prepared(
            toy_db, toy_template, fail_recost=range(1, 10_000)
        )
        sv = SelectivityVector.of(0.4, 0.4)
        resilient.recost(memo, sv)               # 3 failed attempts
        resilient.recost(memo, sv)               # breaker opens (threshold 4)
        calls_when_open = flaky.recost_calls
        for _ in range(3):                       # within the 5-call cooldown
            assert resilient.recost(memo, sv) == math.inf
        assert flaky.recost_calls == calls_when_open   # no inner calls
        res = resilient.counters.resilience
        assert res.breaker_opens >= 1
        assert res.breaker_short_circuits == 3
        assert resilient.recost_breaker.is_open

    def test_breaker_recovers_after_engine_heals(self, toy_db, toy_template):
        resilient, flaky, memo = self._prepared(
            toy_db, toy_template, fail_recost=range(1, 7)
        )
        sv = SelectivityVector.of(0.4, 0.4)
        resilient.recost(memo, sv)               # attempts 1-3 fail
        resilient.recost(memo, sv)               # attempts 4-6 fail -> open
        assert resilient.recost_breaker.is_open
        for _ in range(resilient.recost_breaker.cooldown_calls - 1):
            resilient.recost(memo, sv)           # short-circuited
        cost = resilient.recost(memo, sv)        # half-open probe, heals
        assert math.isfinite(cost)
        assert resilient.recost_breaker.state is BreakerState.CLOSED
        assert resilient.counters.resilience.breaker_closes == 1

    def test_fault_and_breaker_events_traced(self, toy_db, toy_template):
        trace = TraceLog()
        resilient, flaky, memo = self._prepared(
            toy_db, toy_template, fail_recost=range(1, 10_000), trace=trace
        )
        sv = SelectivityVector.of(0.4, 0.4)
        for _ in range(4):
            resilient.recost(memo, sv)
        kinds = {e.kind for e in trace.events}
        assert TraceEventKind.FAULT in kinds
        assert TraceEventKind.RETRY in kinds
        assert TraceEventKind.BREAKER in kinds
        assert TraceEventKind.DEGRADED in kinds


class TestResilientOptimize:
    def test_retry_then_success(self, toy_db, toy_template):
        engine = make_engine(toy_db, toy_template)
        flaky = ScriptedFailures(engine, fail_optimize={1})
        resilient = ResilientEngineAPI(flaky, policy=FAST_POLICY, sleep=NO_SLEEP)
        result = resilient.optimize(SelectivityVector.of(0.3, 0.3))
        assert result.cost > 0
        assert flaky.optimize_calls == 2

    def test_exhaustion_raises_unavailable(self, toy_db, toy_template):
        engine = make_engine(toy_db, toy_template)
        flaky = ScriptedFailures(engine, fail_optimize=range(1, 100))
        resilient = ResilientEngineAPI(flaky, policy=FAST_POLICY, sleep=NO_SLEEP)
        with pytest.raises(OptimizeUnavailableError):
            resilient.optimize(SelectivityVector.of(0.3, 0.3))

    def test_timeout_counts_as_failure(self, toy_db, toy_template):
        engine = make_engine(toy_db, toy_template)
        flaky = ScriptedFailures(
            engine, fail_optimize=range(1, 100), error=EngineTimeoutError
        )
        resilient = ResilientEngineAPI(flaky, policy=FAST_POLICY, sleep=NO_SLEEP)
        with pytest.raises(OptimizeUnavailableError):
            resilient.optimize(SelectivityVector.of(0.3, 0.3))
        assert resilient.counters.resilience.faults_optimize == 3


class TestScrOptimizerFallback:
    def test_fallback_serves_cached_plan_uncertified(self, toy_db, toy_template):
        engine = make_engine(toy_db, toy_template)
        flaky = ScriptedFailures(engine)
        resilient = ResilientEngineAPI(flaky, policy=FAST_POLICY, sleep=NO_SLEEP)
        scr = SCR(resilient, lam=1.5)
        # Warm the cache with healthy traffic.
        for inst in instances_for_template(toy_template, 40, seed=3):
            assert scr.process(inst).certified
        # Now the optimizer goes down entirely.
        flaky.fail_optimize = set(range(1, 10_000))
        fell_back = 0
        for inst in instances_for_template(toy_template, 60, seed=5):
            choice = scr.process(inst)
            if choice.check == "fallback":
                fell_back += 1
                assert not choice.certified
                assert not choice.used_optimizer
                assert choice.plan_signature
        assert fell_back >= 1
        assert resilient.counters.resilience.optimize_fallbacks == fell_back

    def test_empty_cache_reraises(self, toy_db, toy_template):
        engine = make_engine(toy_db, toy_template)
        flaky = ScriptedFailures(engine, fail_optimize=range(1, 10_000))
        resilient = ResilientEngineAPI(flaky, policy=FAST_POLICY, sleep=NO_SLEEP)
        scr = SCR(resilient, lam=1.5)
        with pytest.raises(OptimizeUnavailableError):
            scr.process(QueryInstance("t", sv=SelectivityVector.of(0.5, 0.5)))


class TestSelectivityFallback:
    def test_stale_vector_inflated_and_flagged(self, toy_db, toy_template):
        engine = make_engine(toy_db, toy_template)
        flaky = ScriptedFailures(engine, fail_selectivity=range(2, 100))
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, base_backoff=0.0, max_backoff=0.0),
            svector_inflation=2.0,
        )
        resilient = ResilientEngineAPI(flaky, policy=policy, sleep=NO_SLEEP)
        good = resilient.selectivity_vector(
            QueryInstance("toy_join", sv=SelectivityVector.of(0.3, 0.6))
        )
        assert not resilient.last_selectivity_degraded
        degraded = resilient.selectivity_vector(
            QueryInstance("toy_join", sv=SelectivityVector.of(0.9, 0.9))
        )
        assert resilient.last_selectivity_degraded
        assert degraded == SelectivityVector.of(0.6, 1.0)  # inflated, clamped
        assert resilient.counters.resilience.selectivity_fallbacks == 1
        assert good == SelectivityVector.of(0.3, 0.6)

    def test_no_last_known_good_raises(self, toy_db, toy_template):
        engine = make_engine(toy_db, toy_template)
        flaky = ScriptedFailures(engine, fail_selectivity=range(1, 100))
        resilient = ResilientEngineAPI(flaky, policy=FAST_POLICY, sleep=NO_SLEEP)
        with pytest.raises(SelectivityUnavailableError):
            resilient.selectivity_vector(
                QueryInstance("toy_join", sv=SelectivityVector.of(0.5, 0.5))
            )

    def test_degraded_instances_marked_uncertified(self, toy_db, toy_template):
        engine = make_engine(toy_db, toy_template)
        flaky = ScriptedFailures(engine, fail_selectivity={5, 6, 7})
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1, base_backoff=0.0, max_backoff=0.0)
        )
        resilient = ResilientEngineAPI(flaky, policy=policy, sleep=NO_SLEEP)
        scr = SCR(resilient, lam=2.0)
        uncertified = 0
        for inst in instances_for_template(toy_template, 20, seed=9):
            choice = scr.process(inst)
            if not choice.certified:
                uncertified += 1
        assert uncertified == 3


class TestFaultInjectorDeterminism:
    def test_same_seed_same_fault_sequence(self, toy_db, toy_template):
        config = FaultConfig(
            recost=FaultProfile(error_rate=0.3, corrupt_rate=0.3),
            optimize=FaultProfile(timeout_rate=0.2),
        )

        def run(seed):
            engine = make_engine(toy_db, toy_template)
            injector = FaultInjector(engine, config, seed=seed)
            resilient = ResilientEngineAPI(
                injector, policy=FAST_POLICY, sleep=NO_SLEEP
            )
            scr = SCR(resilient, lam=2.0)
            for inst in instances_for_template(toy_template, 60, seed=21):
                try:
                    scr.process(inst)
                except OptimizeUnavailableError:
                    pass
            return [(f.api, f.mode, f.call_index) for f in injector.injected]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(error_rate=1.5)


class TestManagerQuarantine:
    def test_open_breaker_quarantines_template(self, toy_db, toy_template):
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, base_backoff=0.0, max_backoff=0.0),
            breaker_failure_threshold=2,
            breaker_cooldown_calls=50,
        )

        def wrapper(engine):
            broken = ScriptedFailures(engine, fail_recost=range(1, 10_000))
            return ResilientEngineAPI(broken, policy=policy, sleep=NO_SLEEP)

        manager = PQOManager(
            database=toy_db, global_plan_budget=8, engine_wrapper=wrapper
        )
        manager.register(toy_template, lam=1.2)
        for inst in instances_for_template(toy_template, 50, seed=13):
            manager.process(inst)
        assert manager.quarantined_templates == [toy_template.name]
        state = manager.state(toy_template.name)
        assert state.quarantined
        assert state.budget == 1                 # frozen at the floor
        rows = manager.report()
        assert rows[0]["quarantined"] == "yes"

    def test_healthy_engine_never_quarantined(self, toy_db, toy_template):
        manager = PQOManager(
            database=toy_db,
            global_plan_budget=8,
            engine_wrapper=resilient_engine_factory(sleep=NO_SLEEP),
        )
        manager.register(toy_template, lam=1.5)
        for inst in instances_for_template(toy_template, 50, seed=17):
            manager.process(inst)
        assert manager.quarantined_templates == []
        assert manager.report()[0]["quarantined"] == "-"


class TestInstanceIndexThreading:
    def test_trace_api_calls_carry_instance_index(self, toy_db, toy_template):
        trace = TraceLog()
        engine = make_engine(toy_db, toy_template, trace=trace)
        scr = SCR(engine, lam=1.5, trace=trace)
        for inst in instances_for_template(toy_template, 30, seed=19):
            scr.process(inst)
        api_events = [
            e for e in trace.events
            if e.kind in (TraceEventKind.OPTIMIZE, TraceEventKind.RECOST)
        ]
        assert api_events
        assert all(e.sequence_id >= 0 for e in api_events)
        # Indices must span the workload, not stick at one value.
        assert len({e.sequence_id for e in api_events}) > 1


class TestPerCallDegradedStatus:
    """The degraded-sVector status must be per call / per thread, never a
    shared flag another thread's call can reset before it is read."""

    def _flaky_resilient(self, toy_db, toy_template, fail_calls):
        engine = make_engine(toy_db, toy_template)
        flaky = ScriptedFailures(engine, fail_selectivity=fail_calls)
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, base_backoff=0.0, max_backoff=0.0),
            svector_inflation=2.0,
        )
        return ResilientEngineAPI(flaky, policy=policy, sleep=NO_SLEEP)

    def test_selectivity_vector_ex_returns_status(self, toy_db, toy_template):
        resilient = self._flaky_resilient(toy_db, toy_template, {2, 3})
        sv, degraded = resilient.selectivity_vector_ex(
            QueryInstance("toy_join", sv=SelectivityVector.of(0.3, 0.6))
        )
        assert not degraded
        assert sv == SelectivityVector.of(0.3, 0.6)
        sv, degraded = resilient.selectivity_vector_ex(
            QueryInstance("toy_join", sv=SelectivityVector.of(0.9, 0.9))
        )
        assert degraded
        assert sv == SelectivityVector.of(0.6, 1.0)  # stale, inflated

    def test_degraded_flag_survives_other_threads_calls(
        self, toy_db, toy_template
    ):
        import threading

        # Raw call 1 (main thread) succeeds and seeds last-known-good;
        # calls 2+3 (worker's attempt + retry) fail -> degraded; call 4
        # (main thread again) succeeds and must NOT reset the worker's
        # view of its own degradation.
        resilient = self._flaky_resilient(toy_db, toy_template, {2, 3})
        resilient.selectivity_vector(
            QueryInstance("toy_join", sv=SelectivityVector.of(0.3, 0.6))
        )
        worker_done = threading.Event()
        main_done = threading.Event()
        observed: dict[str, bool] = {}

        def worker():
            _, degraded = resilient.selectivity_vector_ex(
                QueryInstance("toy_join", sv=SelectivityVector.of(0.9, 0.9))
            )
            observed["returned"] = degraded
            worker_done.set()
            main_done.wait(timeout=10)
            # Read after the main thread's good call: a shared flag
            # would have been reset to False by now.
            observed["flag_after"] = resilient.last_selectivity_degraded

        t = threading.Thread(target=worker)
        t.start()
        assert worker_done.wait(timeout=10)
        _, degraded = resilient.selectivity_vector_ex(
            QueryInstance("toy_join", sv=SelectivityVector.of(0.4, 0.5))
        )
        assert not degraded
        assert not resilient.last_selectivity_degraded
        main_done.set()
        t.join(timeout=10)
        assert observed == {"returned": True, "flag_after": True}

    def test_instance_index_is_thread_local(self, toy_db, toy_template):
        import threading

        engine = make_engine(toy_db, toy_template)
        resilient = ResilientEngineAPI(engine, policy=FAST_POLICY, sleep=NO_SLEEP)
        resilient.begin_instance(1)
        worker_done = threading.Event()

        def worker():
            resilient.begin_instance(2)
            worker_done.set()

        t = threading.Thread(target=worker)
        t.start()
        assert worker_done.wait(timeout=10)
        t.join(timeout=10)
        # The worker's begin_instance must not clobber this thread's
        # attribution index on either layer.
        assert resilient._index == 1
        assert engine._instance_index == 1
