"""Tests for the columnar executor.

The central invariant: *every* physical plan the optimizer can produce
for a query instance returns the same result cardinality, which also
matches a plan-independent reference evaluation.
"""

import numpy as np
import pytest

from repro.executor.engine import PlanExecutor, _hash_match, reference_row_count
from repro.query.instance import QueryInstance, SelectivityVector
from repro.query.template import AggregationKind, QueryTemplate, join, range_predicate
from repro.query.expressions import ColumnRef
from repro.workload.generator import instances_for_template


class TestHashMatch:
    def test_simple_match(self):
        l_idx, r_idx = _hash_match(np.array([1, 2, 3]), np.array([2, 3, 4]))
        pairs = set(zip(l_idx.tolist(), r_idx.tolist()))
        assert pairs == {(1, 0), (2, 1)}

    def test_duplicates_produce_cross_product(self):
        l_idx, r_idx = _hash_match(np.array([5, 5]), np.array([5, 5, 5]))
        assert len(l_idx) == 6

    def test_no_matches(self):
        l_idx, r_idx = _hash_match(np.array([1]), np.array([2]))
        assert len(l_idx) == 0 and len(r_idx) == 0


@pytest.fixture(scope="module")
def executor(toy_db, toy_template):
    return PlanExecutor(toy_db.data, toy_template)


class TestExecution:
    def _instance(self, toy_db, toy_template, s1, s2) -> QueryInstance:
        params = toy_db.estimator.parameters_for_selectivities(
            toy_template, SelectivityVector.of(s1, s2)
        )
        return QueryInstance(
            "toy_join", parameters=params, sv=SelectivityVector.of(s1, s2)
        )

    def test_requires_parameters(self, toy_db, toy_template, toy_engine, executor):
        result = toy_engine.optimize(SelectivityVector.of(0.5, 0.5))
        with pytest.raises(ValueError, match="parameter"):
            executor.execute(
                result.plan, QueryInstance("toy_join", sv=SelectivityVector.of(0.5, 0.5))
            )

    def test_matches_reference_count(self, toy_db, toy_template, toy_engine,
                                     executor):
        inst = self._instance(toy_db, toy_template, 0.3, 0.4)
        result = toy_engine.optimize(inst.selectivities)
        executed = executor.execute(result.plan, inst)
        expected = reference_row_count(toy_db.data, toy_template, inst)
        assert executed.row_count == expected

    def test_all_plans_agree_on_cardinality(self, toy_db, toy_template,
                                            toy_engine, executor):
        """Different optimal plans from different selectivity corners,
        executed at the same instance, return identical counts."""
        inst = self._instance(toy_db, toy_template, 0.2, 0.5)
        expected = reference_row_count(toy_db.data, toy_template, inst)
        corners = [
            SelectivityVector.of(0.001, 0.001),
            SelectivityVector.of(0.9, 0.9),
            SelectivityVector.of(0.005, 0.9),
            SelectivityVector.of(0.9, 0.005),
        ]
        signatures = set()
        for sv in corners:
            plan = toy_engine.optimize(sv).plan
            signatures.add(plan.signature())
            assert executor.execute(plan, inst).row_count == expected
        assert len(signatures) >= 3  # genuinely different plans agree

    def test_estimates_track_actuals(self, toy_db, toy_template, toy_engine,
                                     executor):
        """Cardinality model sanity: estimate within a small factor of
        the executed count for mid-range selectivities."""
        inst = self._instance(toy_db, toy_template, 0.4, 0.6)
        result = toy_engine.optimize(inst.selectivities)
        executed = executor.execute(result.plan, inst)
        estimate = result.plan.cardinality
        assert executed.row_count > 0
        ratio = estimate / executed.row_count
        assert 0.3 < ratio < 3.0

    def test_wall_time_recorded(self, toy_db, toy_template, toy_engine, executor):
        inst = self._instance(toy_db, toy_template, 0.5, 0.5)
        result = toy_engine.optimize(inst.selectivities)
        executed = executor.execute(result.plan, inst)
        assert executed.wall_seconds > 0
        assert executed.operator_count == result.plan.node_count()


class TestAggregateExecution:
    def test_count_aggregate(self, toy_db):
        template = QueryTemplate(
            name="toy_count_exec", database="toy", tables=["orders"],
            parameterized=[range_predicate("orders", "o_amount", "<=")],
            aggregation=AggregationKind.COUNT,
        )
        engine = toy_db.engine(template)
        sv = SelectivityVector.of(0.3)
        params = toy_db.estimator.parameters_for_selectivities(template, sv)
        inst = QueryInstance(template.name, parameters=params, sv=sv)
        plan = engine.optimize(sv).plan
        executor = PlanExecutor(toy_db.data, template)
        executed = executor.execute(plan, inst)
        # Scalar aggregate returns the (filtered) input count.
        values = toy_db.data.table("orders").column("o_amount")
        assert executed.row_count == int((values <= params[0]).sum())

    def test_group_by_aggregate(self, toy_db):
        template = QueryTemplate(
            name="toy_group_exec", database="toy", tables=["orders", "cust"],
            joins=[join("orders", "o_cust", "cust", "c_id")],
            parameterized=[range_predicate("orders", "o_amount", "<=")],
            aggregation=AggregationKind.GROUP_BY,
            group_by=ColumnRef("cust", "c_bal"),
        )
        engine = toy_db.engine(template)
        sv = SelectivityVector.of(0.5)
        params = toy_db.estimator.parameters_for_selectivities(template, sv)
        inst = QueryInstance(template.name, parameters=params, sv=sv)
        plan = engine.optimize(sv).plan
        executor = PlanExecutor(toy_db.data, template)
        executed = executor.execute(plan, inst)
        # Group count <= distinct values of the grouping column.
        distinct = len(np.unique(toy_db.data.table("cust").column("c_bal")))
        assert 0 < executed.row_count <= distinct


class TestTpchExecution:
    def test_three_way_join_counts_agree(self, tpch_db):
        from repro.workload.templates import tpch_templates

        template = next(
            t for t in tpch_templates() if t.name == "tpch_shipping_priority"
        )
        engine = tpch_db.engine(template)
        instances = instances_for_template(
            template, 3, seed=1, estimator=tpch_db.estimator
        )
        executor = PlanExecutor(tpch_db.data, template)
        for inst in instances:
            plan = engine.optimize(inst.selectivities).plan
            executed = executor.execute(plan, inst)
            expected = reference_row_count(tpch_db.data, template, inst)
            assert executed.row_count == expected
