"""Cross-validation of the two executors.

The Volcano-style iterator executor and the vectorized columnar
executor are independent implementations of the same plan semantics;
for any plan and instance they must agree on the result cardinality,
which must also equal the plan-independent reference evaluation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor.engine import PlanExecutor, reference_row_count
from repro.executor.iterators import IteratorExecutor
from repro.query.instance import QueryInstance, SelectivityVector
from repro.query.template import AggregationKind, QueryTemplate, join, range_predicate
from repro.query.expressions import ColumnRef

sel = st.floats(min_value=0.01, max_value=1.0)


def make_instance(db, template, sv: SelectivityVector) -> QueryInstance:
    params = db.estimator.parameters_for_selectivities(template, sv)
    return QueryInstance(template.name, parameters=params, sv=sv)


class TestCrossValidation:
    def test_join_counts_agree(self, toy_db, toy_template, toy_engine):
        columnar = PlanExecutor(toy_db.data, toy_template)
        volcano = IteratorExecutor(toy_db.data, toy_template)
        inst = make_instance(toy_db, toy_template, SelectivityVector.of(0.2, 0.3))
        plan = toy_engine.optimize(inst.selectivities).plan
        a = columnar.execute(plan, inst).row_count
        b = volcano.execute_count(plan, inst)
        c = reference_row_count(toy_db.data, toy_template, inst)
        assert a == b == c

    @settings(max_examples=15, deadline=None)
    @given(s1=sel, s2=sel)
    def test_property_executors_agree(self, toy_db, toy_template, toy_engine,
                                      s1, s2):
        inst = make_instance(toy_db, toy_template, SelectivityVector.of(s1, s2))
        plan = toy_engine.optimize(inst.selectivities).plan
        columnar = PlanExecutor(toy_db.data, toy_template)
        volcano = IteratorExecutor(toy_db.data, toy_template)
        assert (columnar.execute(plan, inst).row_count
                == volcano.execute_count(plan, inst))

    def test_every_plan_shape_agrees(self, toy_db, toy_template, toy_engine):
        """Drive all four optimal plans from the corners through both
        executors at a common instance."""
        inst = make_instance(toy_db, toy_template, SelectivityVector.of(0.3, 0.4))
        expected = reference_row_count(toy_db.data, toy_template, inst)
        columnar = PlanExecutor(toy_db.data, toy_template)
        volcano = IteratorExecutor(toy_db.data, toy_template)
        for corner in (
            SelectivityVector.of(0.001, 0.001),
            SelectivityVector.of(0.9, 0.9),
            SelectivityVector.of(0.005, 0.9),
            SelectivityVector.of(0.9, 0.005),
        ):
            plan = toy_engine.optimize(corner).plan
            assert columnar.execute(plan, inst).row_count == expected
            assert volcano.execute_count(plan, inst) == expected


class TestAggregates:
    def test_count_agrees(self, toy_db):
        template = QueryTemplate(
            name="iter_count", database="toy", tables=["orders"],
            parameterized=[range_predicate("orders", "o_amount", "<=")],
            aggregation=AggregationKind.COUNT,
        )
        engine = toy_db.engine(template)
        inst = make_instance(toy_db, template, SelectivityVector.of(0.4))
        plan = engine.optimize(inst.selectivities).plan
        columnar = PlanExecutor(toy_db.data, template)
        volcano = IteratorExecutor(toy_db.data, template)
        assert (columnar.execute(plan, inst).row_count
                == volcano.execute_count(plan, inst))

    def test_group_by_agrees(self, toy_db):
        template = QueryTemplate(
            name="iter_group", database="toy", tables=["orders", "cust"],
            joins=[join("orders", "o_cust", "cust", "c_id")],
            parameterized=[range_predicate("orders", "o_amount", "<=")],
            aggregation=AggregationKind.GROUP_BY,
            group_by=ColumnRef("cust", "c_bal"),
        )
        engine = toy_db.engine(template)
        inst = make_instance(toy_db, template, SelectivityVector.of(0.5))
        plan = engine.optimize(inst.selectivities).plan
        columnar = PlanExecutor(toy_db.data, template)
        volcano = IteratorExecutor(toy_db.data, template)
        assert (columnar.execute(plan, inst).row_count
                == volcano.execute_count(plan, inst))

    def test_sorted_output_agrees(self, toy_db):
        template = QueryTemplate(
            name="iter_sorted", database="toy", tables=["orders"],
            parameterized=[range_predicate("orders", "o_amount", "<=")],
            order_by=ColumnRef("orders", "o_date"),
        )
        engine = toy_db.engine(template)
        inst = make_instance(toy_db, template, SelectivityVector.of(0.3))
        plan = engine.optimize(inst.selectivities).plan
        columnar = PlanExecutor(toy_db.data, template)
        volcano = IteratorExecutor(toy_db.data, template)
        assert (columnar.execute(plan, inst).row_count
                == volcano.execute_count(plan, inst))


class TestIteratorSemantics:
    def test_index_scan_yields_sorted_rows(self, toy_db, toy_template,
                                           toy_engine):
        from repro.executor.iterators import ScanIterator
        from repro.optimizer.operators import PhysicalOp
        from repro.optimizer.plans import PlanNode

        inst = make_instance(toy_db, toy_template, SelectivityVector.of(0.3, 1.0))
        node = PlanNode(op=PhysicalOp.INDEX_SCAN, table="orders",
                        index_column="o_date")
        scan = ScanIterator(toy_db.data, toy_template, inst, node)
        dates = [row["orders.o_date"] for row in scan.rows()]
        assert dates == sorted(dates)

    def test_requires_parameters(self, toy_db, toy_template, toy_engine):
        volcano = IteratorExecutor(toy_db.data, toy_template)
        plan = toy_engine.optimize(SelectivityVector.of(0.5, 0.5)).plan
        with pytest.raises(ValueError, match="parameters"):
            volcano.execute_count(
                plan, QueryInstance("t", sv=SelectivityVector.of(0.5, 0.5))
            )

    def test_tpch_template_small_instances(self, tpch_db):
        from repro.workload.templates import tpch_templates

        template = next(
            t for t in tpch_templates() if t.name == "tpch_promotion_effect"
        )
        engine = tpch_db.engine(template)
        columnar = PlanExecutor(tpch_db.data, template)
        volcano = IteratorExecutor(tpch_db.data, template)
        inst = make_instance(
            tpch_db, template, SelectivityVector.of(0.02, 0.05, 0.1)
        )
        plan = engine.optimize(inst.selectivities).plan
        assert (columnar.execute(plan, inst).row_count
                == volcano.execute_count(plan, inst))
