"""Tests for query templates and predicate expressions."""

import pytest

from repro.query.expressions import (
    ColumnRef,
    ComparisonOp,
    FixedPredicate,
    JoinEdge,
    ParameterizedPredicate,
)
from repro.query.template import (
    AggregationKind,
    QueryTemplate,
    join,
    range_predicate,
)


class TestExpressions:
    def test_comparison_apply(self):
        assert ComparisonOp.LE.apply(3, 5)
        assert ComparisonOp.GE.apply(5, 5)
        assert ComparisonOp.EQ.apply(5, 5)
        assert not ComparisonOp.EQ.apply(4, 5)

    def test_column_ref_str(self):
        assert str(ColumnRef("t", "c")) == "t.c"

    def test_predicate_str(self):
        pred = ParameterizedPredicate(ColumnRef("t", "c"), ComparisonOp.LE)
        assert str(pred) == "t.c <= ?"
        fixed = FixedPredicate(ColumnRef("t", "c"), ComparisonOp.GE, 7)
        assert "7" in str(fixed)

    def test_join_edge_tables(self):
        edge = JoinEdge(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert edge.tables() == ("a", "b")
        assert str(edge) == "a.x = b.y"


class TestTemplateValidation:
    def test_requires_tables(self):
        with pytest.raises(ValueError, match="at least one table"):
            QueryTemplate(name="q", database="d", tables=[])

    def test_rejects_duplicate_tables(self):
        with pytest.raises(ValueError, match="duplicate"):
            QueryTemplate(name="q", database="d", tables=["a", "a"])

    def test_rejects_join_on_unknown_table(self):
        with pytest.raises(ValueError, match="unknown table"):
            QueryTemplate(
                name="q", database="d", tables=["a"],
                joins=[join("a", "x", "b", "y")],
            )

    def test_rejects_predicate_on_unknown_table(self):
        with pytest.raises(ValueError, match="unknown table"):
            QueryTemplate(
                name="q", database="d", tables=["a"],
                parameterized=[range_predicate("b", "x")],
            )

    def test_rejects_disconnected_join_graph(self):
        with pytest.raises(ValueError, match="not connected"):
            QueryTemplate(name="q", database="d", tables=["a", "b"])

    def test_group_by_required_for_aggregate(self):
        with pytest.raises(ValueError, match="group_by"):
            QueryTemplate(
                name="q", database="d", tables=["a"],
                aggregation=AggregationKind.GROUP_BY,
            )

    def test_connected_chain_accepted(self):
        t = QueryTemplate(
            name="q", database="d", tables=["a", "b", "c"],
            joins=[join("a", "x", "b", "y"), join("b", "y", "c", "z")],
        )
        assert t.dimensions == 0


class TestTemplateAccessors:
    @pytest.fixture()
    def template(self) -> QueryTemplate:
        return QueryTemplate(
            name="q", database="d", tables=["a", "b"],
            joins=[join("a", "k", "b", "k")],
            parameterized=[
                range_predicate("a", "x", "<="),
                range_predicate("b", "y", ">="),
                range_predicate("a", "z", "<="),
            ],
        )

    def test_dimensions(self, template):
        assert template.dimensions == 3

    def test_predicates_on(self, template):
        assert len(template.predicates_on("a")) == 2
        assert len(template.predicates_on("b")) == 1
        assert template.predicates_on("c") == []

    def test_parameter_index(self, template):
        pred_b = template.predicates_on("b")[0]
        assert template.parameter_index(pred_b) == 1

    def test_join_edges_between(self, template):
        edges = template.join_edges_between(frozenset(["a"]), frozenset(["b"]))
        assert len(edges) == 1
        assert template.join_edges_between(frozenset(["a"]), frozenset(["c"])) == []

    def test_fixed_on_empty(self, template):
        assert template.fixed_on("a") == []


def test_range_predicate_helper():
    pred = range_predicate("t", "c", ">=")
    assert pred.op is ComparisonOp.GE
    assert pred.column == ColumnRef("t", "c")


def test_join_helper():
    edge = join("a", "x", "b", "y")
    assert edge.left == ColumnRef("a", "x")
    assert edge.right == ColumnRef("b", "y")
