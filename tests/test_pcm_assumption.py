"""Property tests of the Plan Cost Monotonicity assumption itself.

PCM (the prior bounded technique) and BCG both build on the assumption
that *optimal* cost grows monotonically under selectivity dominance.
Our optimizer should satisfy this essentially everywhere — optimal cost
is the min over plans, and each plan's cost is monotone in
cardinalities — which is exactly why PCM's rectangles are sound on this
substrate.  These properties guard that foundation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.instance import SelectivityVector

sel = st.floats(min_value=1e-3, max_value=1.0)


@settings(max_examples=40, deadline=None)
@given(s1=sel, s2=sel, f1=st.floats(min_value=1.0, max_value=5.0),
       f2=st.floats(min_value=1.0, max_value=5.0))
def test_property_optimal_cost_monotone_under_dominance(
    toy_engine, s1, s2, f1, f2
):
    """If q_b dominates q_a, Copt(q_b) >= Copt(q_a) (PCM)."""
    a = SelectivityVector.of(s1, s2)
    b = SelectivityVector.of(min(1.0, s1 * f1), min(1.0, s2 * f2))
    cost_a = toy_engine.optimize(a).cost
    cost_b = toy_engine.optimize(b).cost
    assert cost_b >= cost_a * (1 - 1e-9)


@settings(max_examples=40, deadline=None)
@given(s1=sel, s2=sel, alpha=st.floats(min_value=1.0, max_value=10.0))
def test_property_single_plan_cost_monotone_per_dimension(
    toy_engine, s1, s2, alpha
):
    """A fixed plan's recost is monotone in each selectivity (PCM per
    plan, not just at the optimum)."""
    base = SelectivityVector.of(s1, s2)
    plan = toy_engine.optimize(base).shrunken_memo
    grown1 = SelectivityVector.of(min(1.0, s1 * alpha), s2)
    grown2 = SelectivityVector.of(s1, min(1.0, s2 * alpha))
    cost_base = toy_engine.recost(plan, base)
    assert toy_engine.recost(plan, grown1) >= cost_base * (1 - 1e-9)
    assert toy_engine.recost(plan, grown2) >= cost_base * (1 - 1e-9)


@settings(max_examples=30, deadline=None)
@given(s1=sel, s2=sel)
def test_property_optimal_cost_below_every_cached_plan(toy_engine, s1, s2):
    """Copt is the lower envelope: no plan recosts below it."""
    target = SelectivityVector.of(s1, s2)
    optimal = toy_engine.optimize(target).cost
    for anchor in (
        SelectivityVector.of(0.001, 0.001),
        SelectivityVector.of(0.9, 0.9),
        SelectivityVector.of(0.01, 0.8),
    ):
        plan = toy_engine.optimize(anchor).shrunken_memo
        assert toy_engine.recost(plan, target) >= optimal * (1 - 1e-9)


class TestPcmRectangleSoundness:
    """The PCM inference rule, verified against the engine directly."""

    @settings(max_examples=25, deadline=None)
    @given(s1=sel, s2=sel, f1=st.floats(min_value=1.05, max_value=3.0),
           f2=st.floats(min_value=1.05, max_value=3.0),
           t1=st.floats(min_value=0.0, max_value=1.0),
           t2=st.floats(min_value=0.0, max_value=1.0))
    def test_property_rectangle_inference_sound(
        self, toy_engine, s1, s2, f1, f2, t1, t2
    ):
        """If Copt(hi) <= lam * Copt(lo), then hi's plan is lam-optimal
        anywhere in the [lo, hi] rectangle (the PCM theorem)."""
        lam = 2.0
        lo = SelectivityVector.of(s1, s2)
        hi = SelectivityVector.of(min(1.0, s1 * f1), min(1.0, s2 * f2))
        res_lo = toy_engine.optimize(lo)
        res_hi = toy_engine.optimize(hi)
        if res_hi.cost > lam * res_lo.cost:
            return  # no rectangle; nothing to check
        # Interpolate a point inside the rectangle.
        mid = SelectivityVector.of(
            lo[0] + t1 * (hi[0] - lo[0]),
            lo[1] + t2 * (hi[1] - lo[1]),
        )
        inferred_cost = toy_engine.recost(res_hi.shrunken_memo, mid)
        optimal = toy_engine.optimize(mid).cost
        assert inferred_cost <= lam * optimal * (1 + 1e-6)
