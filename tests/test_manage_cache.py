"""Tests for the manageCache module (Algorithm 2, section 6.3)."""

import math

import pytest

from repro.core.manage_cache import ManageCache, default_lambda_r
from repro.core.plan_cache import PlanCache
from repro.query.instance import SelectivityVector


def test_default_lambda_r_is_sqrt():
    assert default_lambda_r(4.0) == pytest.approx(2.0)
    assert default_lambda_r(2.0) == pytest.approx(math.sqrt(2.0))


@pytest.fixture()
def manage(toy_engine):
    cache = PlanCache()
    return ManageCache(cache=cache, lam=2.0), cache


class TestRegister:
    def test_first_plan_always_added(self, manage, toy_engine):
        mc, cache = manage
        sv = SelectivityVector.of(0.1, 0.1)
        result = toy_engine.optimize(sv)
        entry = mc.register(sv, result, toy_engine.recost)
        assert cache.num_plans == 1
        assert entry.suboptimality == 1.0
        assert entry.optimal_cost == result.cost
        assert mc.stats.plans_added == 1

    def test_existing_plan_reused(self, manage, toy_engine):
        mc, cache = manage
        sv1 = SelectivityVector.of(0.1, 0.1)
        sv2 = SelectivityVector.of(0.12, 0.1)
        res1 = toy_engine.optimize(sv1)
        res2 = toy_engine.optimize(sv2)
        assert res1.plan.signature() == res2.plan.signature()
        mc.register(sv1, res1, toy_engine.recost)
        entry = mc.register(sv2, res2, toy_engine.recost)
        assert cache.num_plans == 1
        assert mc.stats.existing_plan_hits == 1
        assert entry.suboptimality == 1.0

    def test_redundant_plan_rejected(self, manage, toy_engine):
        """A new plan whose cached alternative is within lambda_r is
        discarded; the instance points at the alternative with S=S_min."""
        mc, cache = manage
        # Find two nearby instances with different optimal plans.
        points = [SelectivityVector.of(0.05 + 0.05 * i, 0.05 + 0.05 * i)
                  for i in range(12)]
        results = [toy_engine.optimize(sv) for sv in points]
        base_sig = results[0].plan.signature()
        idx = next(
            (i for i, r in enumerate(results)
             if r.plan.signature() != base_sig), None
        )
        if idx is None:
            pytest.skip("no plan boundary in sampled range")
        mc.register(points[0], results[0], toy_engine.recost)
        # Right at a plan boundary the old plan is nearly optimal for
        # the new instance, so S_min <= sqrt(2) and rejection triggers.
        entry = mc.register(points[idx], results[idx], toy_engine.recost)
        if mc.stats.plans_rejected_redundant:
            assert cache.num_plans == 1
            assert entry.suboptimality >= 1.0
            assert entry.suboptimality <= mc.lambda_r

    def test_non_redundant_plan_added(self, manage, toy_engine):
        mc, cache = manage
        sv1 = SelectivityVector.of(0.001, 0.001)
        sv2 = SelectivityVector.of(0.9, 0.9)
        res1 = toy_engine.optimize(sv1)
        res2 = toy_engine.optimize(sv2)
        mc.register(sv1, res1, toy_engine.recost)
        mc.register(sv2, res2, toy_engine.recost)
        # Extreme corners use genuinely different plans with large cost
        # gaps: both must be kept.
        assert cache.num_plans == 2

    def test_lambda_r_one_stores_everything(self, toy_engine):
        cache = PlanCache()
        mc = ManageCache(cache=cache, lam=2.0, lambda_r=1.0)
        svs = [SelectivityVector.of(0.05 * (i + 1), 0.06 * (i + 1))
               for i in range(10)]
        signatures = set()
        for sv in svs:
            result = toy_engine.optimize(sv)
            signatures.add(result.plan.signature())
            mc.register(sv, result, toy_engine.recost)
        assert cache.num_plans == len(signatures)
        assert mc.stats.plans_rejected_redundant == 0


class TestPlanBudget:
    def test_budget_validated(self):
        with pytest.raises(ValueError):
            ManageCache(cache=PlanCache(), lam=2.0, plan_budget=0)

    def test_eviction_enforces_budget(self, toy_engine):
        cache = PlanCache()
        mc = ManageCache(cache=cache, lam=2.0, lambda_r=1.0, plan_budget=2)
        corners = [
            SelectivityVector.of(0.001, 0.001),
            SelectivityVector.of(0.9, 0.9),
            SelectivityVector.of(0.003, 0.9),
            SelectivityVector.of(0.9, 0.003),
        ]
        for sv in corners:
            mc.register(sv, toy_engine.optimize(sv), toy_engine.recost)
        assert cache.num_plans <= 2
        assert mc.stats.plans_evicted >= 1

    def test_eviction_drops_lfu_and_its_instances(self, toy_engine):
        cache = PlanCache()
        mc = ManageCache(cache=cache, lam=2.0, lambda_r=1.0, plan_budget=2)
        sv_hot = SelectivityVector.of(0.001, 0.001)
        sv_cold = SelectivityVector.of(0.9, 0.9)
        hot_entry = mc.register(sv_hot, toy_engine.optimize(sv_hot),
                                toy_engine.recost)
        cold_entry = mc.register(sv_cold, toy_engine.optimize(sv_cold),
                                 toy_engine.recost)
        hot_entry.usage = 50  # make the first plan clearly hot
        sv_new = SelectivityVector.of(0.003, 0.9)
        mc.register(sv_new, toy_engine.optimize(sv_new), toy_engine.recost)
        if mc.stats.plans_evicted:
            remaining = {e.plan_id for e in cache.instances()}
            assert hot_entry.plan_id in remaining
            assert cold_entry.plan_id not in remaining


class TestAppendixF:
    def test_purge_noop_when_nothing_redundant(self, toy_engine):
        """With a tight lambda no corner plan can cover the other."""
        cache = PlanCache()
        mc = ManageCache(cache=cache, lam=1.2, lambda_r=1.0)
        sv_a = SelectivityVector.of(0.001, 0.001)
        sv_b = SelectivityVector.of(0.9, 0.9)
        res_a = toy_engine.optimize(sv_a)
        res_b = toy_engine.optimize(sv_b)
        # Precondition: each plan is > lambda-suboptimal at the other corner.
        assert toy_engine.recost(res_a.shrunken_memo, sv_b) > 1.2 * res_b.cost
        assert toy_engine.recost(res_b.shrunken_memo, sv_a) > 1.2 * res_a.cost
        mc.register(sv_a, res_a, toy_engine.recost)
        mc.register(sv_b, res_b, toy_engine.recost)
        before = cache.num_plans
        dropped = mc.purge_redundant_existing_plans(toy_engine.recost)
        assert dropped == 0
        assert cache.num_plans == before

    def test_purge_drops_redundant_plan(self, toy_engine):
        """Store every plan (lambda_r=1), then purge: plans along a
        dense path become redundant wrt their neighbours."""
        cache = PlanCache()
        mc = ManageCache(cache=cache, lam=2.0, lambda_r=1.0)
        for i in range(14):
            sv = SelectivityVector.of(0.02 + 0.06 * i, 0.02 + 0.06 * i)
            mc.register(sv, toy_engine.optimize(sv), toy_engine.recost)
        before = cache.num_plans
        if before < 3:
            pytest.skip("not enough distinct plans on this path")
        dropped = mc.purge_redundant_existing_plans(toy_engine.recost)
        assert cache.num_plans == before - dropped
        # Guarantee preserved: every instance's pointed plan is
        # lambda-optimal at the instance.
        for entry in cache.instances():
            plan = cache.plan(entry.plan_id)
            cost = toy_engine.recost(plan.shrunken_memo, entry.sv)
            assert cost / entry.optimal_cost <= mc.lam * (1 + 1e-9)
