"""Property-based tests of the Theorem 1 guarantee invariants.

Hypothesis strategies draw selectivity vectors (and anchor states) and
assert the algebraic facts the λ-guarantee rests on:

* ``G·L ≥ 1`` for every pair of instances (so the selectivity check can
  never certify a bound better than 1);
* ``G·L`` is invariant to dimension order (the bound is a product over
  per-dimension ratios — no ordering may leak in);
* under the linear BCG bound, the Cost Bounding Lemma confines the
  recost ratio ``R`` to ``[1/L, G]``, so an instance the selectivity
  check certifies can never be rejected by the cost check — the cost
  check is a strict refinement;
* the Appendix E redundancy threshold ``λ_r = √λ`` keeps *transitive*
  sub-optimality within λ: an anchor stored with ``S ≤ √λ`` still has
  enough budget ``λ/S ≥ √λ`` for its own region, so every certificate
  issued through it stays ≤ λ — verified both algebraically and through
  the real :class:`GetPlan` machinery.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import LINEAR_BOUND, compute_gl
from repro.core.get_plan import GetPlan
from repro.core.manage_cache import default_lambda_r
from repro.core.plan_cache import InstanceEntry, PlanCache
from repro.query.instance import SelectivityVector

sel = st.floats(min_value=1e-4, max_value=1.0)


def sv_pairs(min_dim: int = 1, max_dim: int = 6):
    """Strategy: two selectivity vectors of one shared dimensionality."""
    return st.integers(min_value=min_dim, max_value=max_dim).flatmap(
        lambda d: st.tuples(
            st.lists(sel, min_size=d, max_size=d),
            st.lists(sel, min_size=d, max_size=d),
        )
    )


@st.composite
def certifiable_scenarios(draw):
    """Strategy: ``(stored, new, λ, S)`` where the selectivity check
    passes *by construction* — no post-hoc filtering.

    Since ``ln(G·L) = Σ_i |ln(new_i/stored_i)|``, drawing a total
    log-distance ``t ≤ ln(λ/S)`` and splitting it across dimensions
    (arbitrary weights and signs) yields a pair with ``G·L ≤ λ/S``.
    Clamping back into the selectivity domain only shrinks per-dimension
    distances, so the bound survives it.
    """
    d = draw(st.integers(min_value=1, max_value=6))
    stored = [draw(sel) for _ in range(d)]
    lam = draw(st.floats(min_value=1.0, max_value=4.0))
    s = min(draw(st.floats(min_value=1.0, max_value=2.0)), lam)
    t = draw(st.floats(min_value=0.0, max_value=1.0)) * math.log(lam / s)
    weights = [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in range(d)]
    total = sum(weights) or 1.0
    signs = [1.0 if draw(st.booleans()) else -1.0 for _ in range(d)]
    new = [
        min(1.0, max(1e-4, sv * math.exp(sign * t * w / total)))
        for sv, w, sign in zip(stored, weights, signs)
    ]
    return stored, new, lam, s


class TestGLProduct:
    @given(sv_pairs())
    def test_gl_at_least_one(self, pair):
        stored, new = map(SelectivityVector.from_sequence, pair)
        g, l = compute_gl(stored, new)
        assert g >= 1.0
        assert l >= 1.0
        assert g * l >= 1.0

    @given(
        st.integers(min_value=2, max_value=6).flatmap(
            lambda d: st.tuples(
                st.lists(sel, min_size=d, max_size=d),
                st.lists(sel, min_size=d, max_size=d),
                st.permutations(range(d)),
            )
        )
    )
    def test_gl_invariant_to_dimension_order(self, triple):
        stored, new, perm = triple
        g1, l1 = compute_gl(
            SelectivityVector.from_sequence(stored),
            SelectivityVector.from_sequence(new),
        )
        g2, l2 = compute_gl(
            SelectivityVector.from_sequence([stored[i] for i in perm]),
            SelectivityVector.from_sequence([new[i] for i in perm]),
        )
        assert g1 * l1 == pytest.approx(g2 * l2, rel=1e-9)

    @given(sv_pairs())
    def test_gl_symmetric_under_swap(self, pair):
        """Swapping stored/new swaps G and L but preserves the product."""
        a, b = map(SelectivityVector.from_sequence, pair)
        g_ab, l_ab = compute_gl(a, b)
        g_ba, l_ba = compute_gl(b, a)
        assert g_ab * l_ab == pytest.approx(g_ba * l_ba, rel=1e-9)


class TestCostCheckRefinesSelectivityCheck:
    """If the selectivity check certifies, the cost check must agree.

    Under the linear BCG assumption the Cost Bounding Lemma bounds the
    observed recost ratio by ``1/L ≤ R ≤ G``; the cost-check bound
    ``R·L`` is then at most ``G·L``, so any anchor passing
    ``G·L ≤ λ/S`` also passes ``R·L ≤ λ/S``.
    """

    @given(
        certifiable_scenarios(),
        st.floats(min_value=0.0, max_value=1.0),   # R's position in [1/L, G]
    )
    def test_never_certifies_what_cost_check_rejects(self, scenario, frac):
        stored_v, new_v, lam, s = scenario
        stored, new = map(SelectivityVector.from_sequence, (stored_v, new_v))
        g, l = compute_gl(stored, new)
        budget = lam / s
        # By construction of the strategy the selectivity check certifies
        # this pair (an assert, not an assume: if the construction drifts
        # the test fails loudly instead of silently filtering).
        assert LINEAR_BOUND.selectivity_bound(g, l) <= budget * (1 + 1e-9)
        # Any recost ratio the BCG assumption allows:
        r = (1.0 / l) + frac * (g - 1.0 / l)
        assert LINEAR_BOUND.cost_bound(r, l) <= budget * (1 + 1e-9)

    @given(sv_pairs())
    def test_cost_bound_never_looser_than_selectivity_bound(self, pair):
        stored, new = map(SelectivityVector.from_sequence, pair)
        g, l = compute_gl(stored, new)
        for frac in (0.0, 0.5, 1.0):
            r = (1.0 / l) + frac * (g - 1.0 / l)
            assert (
                LINEAR_BOUND.cost_bound(r, l)
                <= LINEAR_BOUND.selectivity_bound(g, l) * (1 + 1e-9)
            )


class TestRedundancyTransitivity:
    @given(st.floats(min_value=1.0, max_value=16.0))
    def test_default_lambda_r_is_sqrt(self, lam):
        assert default_lambda_r(lam) == pytest.approx(math.sqrt(lam))

    @given(
        st.floats(min_value=1.0, max_value=16.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_transitive_suboptimality_bounded(self, lam, s_frac, gl_frac):
        """S ≤ √λ and G·L within the anchor's budget ⇒ S·G·L ≤ λ."""
        lambda_r = default_lambda_r(lam)
        s = 1.0 + s_frac * (lambda_r - 1.0)          # anchor stored with S ≤ λ_r
        gl = 1.0 + gl_frac * (lam / s - 1.0)          # passes G·L ≤ λ/S
        assert s * gl <= lam * (1 + 1e-9)

    @given(
        st.lists(
            st.tuples(
                st.lists(sel, min_size=2, max_size=2),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=8,
        ),
        st.lists(sel, min_size=2, max_size=2),
        st.floats(min_value=1.0, max_value=4.0),
    )
    @settings(deadline=None)
    def test_getplan_certificates_never_exceed_lambda(
        self, anchors, query, lam
    ):
        """End-to-end: every hit the real GetPlan machinery certifies —
        selectivity or cost check, through anchors stored with any
        S ≤ λ_r — carries an inferred bound ≤ λ."""
        lambda_r = default_lambda_r(lam)
        cache = PlanCache()
        for sv_values, s_frac in anchors:
            plan = _FakePlan()
            cached = cache.add_plan(plan, _FakeMemo())
            cache.add_instance(InstanceEntry(
                sv=SelectivityVector.from_sequence(sv_values),
                plan_id=cached.plan_id,
                optimal_cost=100.0,
                suboptimality=1.0 + s_frac * (lambda_r - 1.0),
            ))
        get_plan = GetPlan(cache=cache, lam=lam)
        sv = SelectivityVector.from_sequence(query)

        def bcg_consistent_recost(memo, new_sv):
            # Worst BCG-allowed growth: R = G relative to the candidate
            # anchor currently being cost-checked.  Conservative for all.
            best = min(
                (compute_gl(e.sv, new_sv) for e in cache.instances()),
                key=lambda gl: gl[0] * gl[1],
            )
            return 100.0 * best[0]

        decision = get_plan(sv, bcg_consistent_recost)
        if decision.hit:
            assert decision.inferred_suboptimality <= lam * (1 + 1e-9)


class _FakePlan:
    _counter = 0

    def __init__(self):
        _FakePlan._counter += 1
        self._sig = f"fake-plan-{_FakePlan._counter}"

    def signature(self) -> str:
        return self._sig


class _FakeMemo:
    node_count = 1
