"""Properties tied to the paper's footnote 5 and cost-model sensitivity.

Footnote 5 (§5.3): "The area of λ-optimal region remains the same even
after changes to the underlying cost model as long as the cost growth
bounding functions remain the same" — the selectivity-based region is a
pure function of the anchor's sVector and λ.  Plan *diagrams*, by
contrast, shift when cost parameters change (that is the whole point of
cost-based optimization).  These tests pin both facts.
"""

import pytest

from repro.core.regions import SelectivityRegion
from repro.engine.api import EngineAPI
from repro.engine.database import Database
from repro.optimizer.cost_model import CostModel, CostParameters
from repro.optimizer.optimizer import QueryOptimizer
from repro.query.instance import SelectivityVector

from conftest import build_toy_schema

# A "fast random access" profile: index access much cheaper relative to
# sequential scans (SSD-like), shifting scan crossovers.
SSD_PARAMS = CostParameters(index_row=1.2, index_lookup=2.0, seq_row=1.5)


@pytest.fixture(scope="module")
def two_engines(toy_template):
    """The same database under two cost models."""
    schema = build_toy_schema()
    db_default = Database.create(schema, seed=11)
    db_ssd = Database.create(
        build_toy_schema(), seed=11, cost_model=CostModel(SSD_PARAMS)
    )
    def make(db):
        optimizer = QueryOptimizer(
            toy_template, db.stats, db.estimator, db.cost_model
        )
        return EngineAPI(toy_template, optimizer, db.estimator)
    return make(db_default), make(db_ssd)


class TestRegionCostModelIndependence:
    def test_region_membership_identical_across_cost_models(self):
        """Footnote 5: the selectivity region needs no cost model at all
        — membership is a pure function of (anchor, λ, sVector)."""
        anchor = SelectivityVector.of(0.05, 0.1)
        region = SelectivityRegion(anchor, budget=2.0)
        probes = [
            SelectivityVector.of(0.06, 0.1),
            SelectivityVector.of(0.2, 0.1),
            SelectivityVector.of(0.05, 0.19),
        ]
        # The region object has no cost-model dependence by construction;
        # assert the area formula only uses anchor and lambda.
        area = region.area_2d()
        assert area == pytest.approx((2.0 - 0.5) * __import__("math").log(2.0)
                                     * 0.05 * 0.1)
        memberships = [region.contains(p) for p in probes]
        assert memberships == [True, False, True]

    def test_guarantee_holds_under_both_cost_models(self, two_engines,
                                                    toy_template):
        """SCR's λ-optimality is cost-model-relative: it holds under
        whichever model the engine uses."""
        from repro.core.scr import SCR
        from repro.workload.generator import instances_for_template

        for engine in two_engines:
            # A fresh oracle sharing the engine's optimizer/cost model.
            scr = SCR(engine, lam=2.0)
            violations = 0
            instances = instances_for_template(toy_template, 80, seed=91)
            for inst in instances:
                choice = scr.process(inst)
                optimal = engine.optimizer.optimize(inst.selectivities)
                so = (
                    engine.optimizer.recost(
                        choice.shrunken_memo, inst.selectivities
                    ) / optimal.cost
                )
                if so > 2.0 * 1.001:
                    violations += 1
            assert violations <= 2


class TestPlanDiagramCostModelSensitivity:
    def test_plan_choices_shift_with_cost_parameters(self, two_engines):
        """Unlike the regions, the optimizer's plan choices move when
        the cost parameters move (SSD profile favours index access)."""
        default_engine, ssd_engine = two_engines
        differs = 0
        for s in (0.02, 0.05, 0.1, 0.2, 0.4):
            sv = SelectivityVector.of(s, s)
            sig_a = default_engine.optimize(sv).plan.signature()
            sig_b = ssd_engine.optimize(sv).plan.signature()
            if sig_a != sig_b:
                differs += 1
        assert differs >= 1

    def test_recost_uses_owning_cost_model(self, two_engines):
        """A plan recosted under different cost models yields different
        costs — the shrunken memo stores structure, not prices."""
        default_engine, ssd_engine = two_engines
        sv = SelectivityVector.of(0.05, 0.05)
        plan = default_engine.optimize(sv).shrunken_memo
        a = default_engine.optimizer.recost(plan, sv)
        b = ssd_engine.optimizer.recost(plan, sv)
        assert a != pytest.approx(b, rel=1e-3)
