"""Unit tests for the observability substrate (DESIGN.md §10).

Covers the metrics registry (label handling, cardinality caps,
histogram bucket-edge semantics, barrier-synchronized thread stress),
the injectable clock, the span recorder's bounded ring, and the
guarantee audit trail's exactly-one-outcome / λ-violation accounting.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    FakeClock,
    GuaranteeAudit,
    LabelCardinalityError,
    MetricsRegistry,
    Observability,
    SpanRecorder,
    as_clock,
)
from repro.obs.clock import Clock
from repro.obs.registry import Histogram


class TestFamilies:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", labels=("t",))
        family.labels(t="a").inc()
        family.labels(t="a").inc(2.5)
        family.labels(t="b").inc()
        assert registry.value("c_total", t="a") == 3.5
        assert registry.total("c_total") == 4.5

    def test_counter_rejects_negative(self):
        child = MetricsRegistry().counter("c_total").labels()
        with pytest.raises(ValueError):
            child.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g").labels()
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0

    def test_redeclare_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", labels=("t",))
        again = registry.counter("c_total", "ignored", labels=("t",))
        assert again is first

    def test_redeclare_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("t",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m", labels=("t",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("m", labels=("other",))
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok", labels=("bad-label",))

    def test_wrong_label_set_rejected(self):
        family = MetricsRegistry().counter("c", labels=("t", "api"))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(t="x")
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(t="x", api="y", extra="z")

    def test_label_cardinality_cap(self):
        registry = MetricsRegistry(max_series_per_family=4)
        family = registry.counter("c", labels=("t",))
        for i in range(4):
            family.labels(t=f"t{i}").inc()
        with pytest.raises(LabelCardinalityError):
            family.labels(t="one_too_many")
        # Existing children stay resolvable after the cap trips.
        assert registry.value("c", t="t0") == 1.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "ch", labels=("t",)).labels(t="a").inc()
        registry.histogram("h", "hh", buckets=(1.0,)).labels().observe(0.5)
        snap = registry.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["series"][0] == {"labels": {"t": "a"}, "value": 1.0}
        hist_row = snap["h"]["series"][0]
        assert hist_row["count"] == 1
        assert hist_row["buckets"][-1][0] == "+Inf"


class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)   # exactly on the first edge -> le="1" bucket
        hist.observe(1.5)
        hist.observe(2.0)   # exactly on the second edge -> le="2" bucket
        hist.observe(2.0001)  # tail
        assert hist.bucket_counts() == [
            (1.0, 1), (2.0, 3), (float("inf"), 4)
        ]
        assert hist.count == 4
        assert hist.sum == pytest.approx(6.5001)

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            hist.observe(1.5)  # all ten land in (1, 2]
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_edge_cases(self):
        hist = Histogram(buckets=(1.0,))
        assert hist.quantile(0.5) == 0.0          # empty
        hist.observe(10.0)                        # tail bucket only
        assert hist.quantile(0.99) == 1.0         # clamped to last edge
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestThreadSafety:
    def test_barrier_stress_counts_exactly(self):
        threads, per_thread = 8, 500
        registry = MetricsRegistry()
        counter = registry.counter("c", labels=("t",))
        hist = registry.histogram("h", buckets=(0.5, 1.0)).labels()
        barrier = threading.Barrier(threads)

        def worker(i: int) -> None:
            child = counter.labels(t=f"t{i % 2}")
            barrier.wait()
            for k in range(per_thread):
                child.inc()
                hist.observe((k % 3) * 0.4)

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert registry.total("c") == threads * per_thread
        assert hist.count == threads * per_thread
        assert hist.bucket_counts()[-1][1] == threads * per_thread

    def test_concurrent_child_creation_single_instance(self):
        registry = MetricsRegistry()
        family = registry.counter("c", labels=("t",))
        barrier = threading.Barrier(8)
        seen = []

        def worker():
            barrier.wait()
            child = family.labels(t="same")
            child.inc()
            seen.append(child)

        pool = [threading.Thread(target=worker) for _ in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len({id(c) for c in seen}) == 1
        assert registry.value("c", t="same") == 8.0


class TestClock:
    def test_fake_clock_advances_all_views(self):
        fake = FakeClock()
        clock = fake.clock
        fake.advance(1.5)
        assert clock.monotonic() == 1.5
        assert clock.perf_counter() == 1.5
        clock.sleep(0.5)  # sleeping on a fake clock time-travels
        assert clock.monotonic() == 2.0
        with pytest.raises(ValueError):
            fake.advance(-1)

    def test_as_clock_normalizes_bare_callable(self):
        ticks = iter([1.0, 2.0])
        clock = as_clock(lambda: next(ticks))
        assert isinstance(clock, Clock)
        assert clock.monotonic() == 1.0
        assert clock.perf_counter() == 2.0
        clock.sleep(99)  # no-op, must not consume the iterator

    def test_as_clock_passthrough_and_typeerror(self):
        clock = FakeClock().clock
        assert as_clock(clock) is clock
        with pytest.raises(TypeError):
            as_clock(42)


class TestSpanRecorder:
    def test_ring_drops_oldest_and_counts(self):
        recorder = SpanRecorder(capacity=3)
        for i in range(5):
            recorder.record(f"s{i}", float(i), 0.1)
        assert [s.name for s in recorder.spans()] == ["s2", "s3", "s4"]
        assert recorder.dropped == 2
        assert recorder.total_recorded == 5
        assert len(recorder) == 3

    def test_span_context_manager_times_with_clock(self):
        fake = FakeClock()
        recorder = SpanRecorder(clock=fake.clock)
        with recorder.span("phase", template="t1") as attrs:
            fake.advance(0.25)
            attrs["hit"] = True
        (span,) = recorder.spans()
        assert span.name == "phase"
        assert span.duration_s == pytest.approx(0.25)
        assert span.attrs == {"template": "t1", "hit": True}

    def test_disabled_recorder_is_a_noop(self):
        recorder = SpanRecorder(enabled=False)
        assert recorder.record("s", 0.0, 1.0) is None
        with recorder.span("s"):
            pass
        assert recorder.spans() == []
        assert recorder.total_recorded == 0

    def test_sink_streams_every_span(self):
        recorder = SpanRecorder(capacity=2)
        seen = []
        recorder.attach_sink(seen.append)
        for i in range(4):
            recorder.record(f"s{i}", 0.0, 0.1)
        assert [s.name for s in seen] == ["s0", "s1", "s2", "s3"]


class TestGuaranteeAudit:
    def test_exactly_one_outcome_accounting(self):
        audit = GuaranteeAudit(MetricsRegistry())
        audit.response("t1", "certified")
        audit.response("t1", "certified")
        audit.response("t1", "uncertified")
        audit.response("t2", "shed")
        assert audit.outcome_totals("t1") == {
            "certified": 2, "uncertified": 1, "shed": 0,
        }
        assert audit.outcome_totals() == {
            "certified": 2, "uncertified": 1, "shed": 1,
        }
        assert audit.total_responses == 4

    def test_unknown_outcome_rejected(self):
        audit = GuaranteeAudit(MetricsRegistry())
        with pytest.raises(ValueError, match="unknown outcome"):
            audit.response("t1", "served")

    def test_bound_within_lambda_is_clean(self):
        audit = GuaranteeAudit(MetricsRegistry())
        assert audit.certified_bound("t1", 1.8, lam=2.0) is False
        assert audit.certified_bound("t1", 2.0, lam=2.0) is False  # == λ ok
        assert audit.zero_violations
        assert audit.violation_events == []

    def test_violation_flagged_and_logged(self):
        audit = GuaranteeAudit(MetricsRegistry())
        assert audit.certified_bound("t1", 2.3, lam=2.0, seq=7) is True
        assert audit.total_violations == 1
        assert not audit.zero_violations
        assert audit.violation_events == [
            {"template": "t1", "bound": 2.3, "lambda": 2.0, "seq": 7,
             "kind": "exact"}
        ]

    def test_violation_event_log_is_bounded(self):
        audit = GuaranteeAudit(MetricsRegistry(), max_violation_events=2)
        for seq in range(5):
            audit.certified_bound("t1", 3.0, lam=2.0, seq=seq)
        assert audit.total_violations == 5      # counter keeps counting
        assert len(audit.violation_events) == 2  # event log stays bounded

    def test_degraded_reason_accounting(self):
        registry = MetricsRegistry()
        audit = GuaranteeAudit(registry)
        audit.degraded("t1", "shed", "queue_full")
        audit.degraded("t1", "shed", "")
        assert registry.value(
            "repro_degraded_total", template="t1", outcome="shed",
            reason="queue_full",
        ) == 1.0
        assert registry.value(
            "repro_degraded_total", template="t1", outcome="shed",
            reason="unknown",
        ) == 1.0


class TestObservabilityHandle:
    def test_report_shape(self):
        obs = Observability()
        obs.audit.response("t1", "certified")
        obs.audit.certified_bound("t1", 1.5, lam=2.0)
        with obs.span("phase"):
            pass
        report = obs.report()
        assert report["outcomes"] == {
            "certified": 1, "uncertified": 0, "shed": 0,
        }
        assert report["lambda_violations"] == 0
        assert report["violation_events"] == []
        assert report["spans_recorded"] == 1
        assert "repro_responses_total" in report["metrics"]

    def test_shares_clock_with_spans(self):
        clock = FakeClock().clock
        obs = Observability(clock=clock)
        assert obs.spans.clock is clock
        assert obs.clock is clock
