"""Integration tests: the observability handle wired through serving.

The acceptance bar of DESIGN.md §10: with one :class:`Observability`
handle attached, every response the serving layer produces is accounted
for by exactly one outcome counter (certified / uncertified / shed),
every certified response's bound lands in the audit histogram with zero
λ-violations, decision spans cover the SCR phases and engine calls, and
the existing report shapes stay stable while sourcing from the registry.
"""

from __future__ import annotations

from concurrent.futures import wait

import pytest

from conftest import build_toy_schema
from repro.core.scr import SCR
from repro.engine.database import Database
from repro.obs import Observability, RESPONSES_TOTAL
from repro.query.instance import QueryInstance
from repro.query.template import QueryTemplate, join, range_predicate
from repro.serving import (
    ConcurrentPQOManager,
    OverloadPolicy,
    ShedError,
    simulated_latency_wrapper,
)
from repro.workload.generator import generate_selectivity_vectors

LAM = 2.0


def make_template(name: str = "obs_join") -> QueryTemplate:
    return QueryTemplate(
        name=name,
        database="toy",
        tables=["orders", "cust"],
        joins=[join("orders", "o_cust", "cust", "c_id")],
        parameterized=[
            range_predicate("orders", "o_date", "<="),
            range_predicate("cust", "c_bal", "<="),
        ],
    )


def make_db() -> Database:
    # A fresh database per test: engines are cached per database, and
    # instrumenting one attaches registry children to it.
    return Database.create(build_toy_schema(), seed=11)


def workload(template: QueryTemplate, m: int, seed: int = 21):
    return [
        QueryInstance(template.name, sv=sv)
        for sv in generate_selectivity_vectors(2, m, seed=seed)
    ]


class TestSerialSCR:
    def test_audit_and_spans_on_serial_path(self):
        db, template = make_db(), make_template()
        obs = Observability()
        scr = SCR(db.engine(template), lam=LAM, obs=obs)
        choices = [scr.process(q) for q in workload(template, 30)]

        # Every choice was certified and every certified bound audited.
        bounds = obs.registry.get("repro_certified_bound").labels(
            template=template.name
        )
        assert bounds.count == len(choices)
        assert obs.audit.zero_violations
        assert all(c.certified_bound is not None for c in choices)
        assert all(
            c.certified_bound <= LAM * (1 + 1e-9) for c in choices
        )

        # The decision spans cover the SCR phases and the engine calls.
        names = {span.name for span in obs.spans.spans()}
        assert "scr.selectivity_check" in names
        assert "scr.cost_check" in names
        assert "scr.redundancy_check" in names
        assert "engine.optimize" in names
        assert "engine.recost" in names
        assert "engine.selectivity" in names

    def test_engine_call_histograms_populated(self):
        db, template = make_db(), make_template()
        obs = Observability()
        scr = SCR(db.engine(template), lam=LAM, obs=obs)
        for q in workload(template, 10):
            scr.process(q)
        calls = obs.registry.get("repro_engine_call_seconds")
        sv_child = calls.labels(template=template.name, api="selectivity")
        assert sv_child.count == 10  # one sVector call per instance


class TestConcurrentServing:
    def test_every_response_exactly_one_outcome(self):
        db, template = make_db(), make_template()
        obs = Observability()
        manager = ConcurrentPQOManager(
            database=db, max_workers=4, obs=obs,
        )
        manager.register(template, lam=LAM)
        instances = workload(template, 60)
        choices = manager.process_many(instances, dedupe=False)
        manager.close()

        totals = obs.audit.outcome_totals(template.name)
        assert sum(totals.values()) == len(instances)
        assert totals["certified"] == sum(1 for c in choices if c.certified)
        assert totals["uncertified"] == sum(
            1 for c in choices if not c.certified
        )
        assert totals["shed"] == 0
        assert obs.audit.zero_violations

        # serving.process spans: one per served response.
        process_spans = [
            s for s in obs.spans.spans() if s.name == "serving.process"
        ]
        assert len(process_spans) == len(instances)
        assert all(
            s.attrs["outcome"] in ("certified", "uncertified")
            for s in process_spans
        )

    def test_report_row_sources_from_registry(self):
        db, template = make_db(), make_template()
        obs = Observability()
        manager = ConcurrentPQOManager(database=db, max_workers=4, obs=obs)
        manager.register(template, lam=LAM)
        manager.process_many(workload(template, 40), dedupe=False)
        row = manager.shard(template.name).stats.row()
        manager.close()
        assert row["processed"] == 40
        assert row["uncertified"] == 0
        assert row["shed"] == 0
        # The registry agrees with the report row (one source of truth).
        assert obs.registry.value(
            RESPONSES_TOTAL, template=template.name, outcome="certified"
        ) == 40

    def test_manager_report_and_prometheus_surfaces(self):
        db, template = make_db(), make_template()
        obs = Observability()
        manager = ConcurrentPQOManager(database=db, max_workers=2, obs=obs)
        manager.register(template, lam=LAM)
        manager.process_many(workload(template, 10), dedupe=False)
        report = manager.obs_report()
        text = manager.prometheus()
        manager.close()
        assert report["lambda_violations"] == 0
        assert sum(report["outcomes"].values()) == 10
        assert (
            f'repro_responses_total{{template="{template.name}",'
            f'outcome="certified"}} 10' in text
        )
        assert "# TYPE repro_certified_bound histogram" in text

    def test_without_obs_surfaces_return_none(self):
        db, template = make_db(), make_template()
        manager = ConcurrentPQOManager(database=db, max_workers=2)
        manager.register(template, lam=LAM)
        manager.process_many(workload(template, 5), dedupe=False)
        assert manager.obs_report() is None
        assert manager.prometheus() is None
        manager.close()


class TestOverloadOutcomes:
    def test_shed_responses_keep_the_identity(self):
        """Cold cache + full queue: rejected submissions shed, and every
        response still lands in exactly one outcome counter."""
        db, template = make_db(), make_template()
        obs = Observability()
        manager = ConcurrentPQOManager(
            database=db,
            max_workers=1,
            engine_wrapper=simulated_latency_wrapper(optimize_seconds=0.3),
            overload=OverloadPolicy(queue_limit=1, evaluate_every=10**6),
            obs=obs,
        )
        manager.register(template, lam=LAM)
        instances = workload(template, 5)
        futures = [manager.submit(q) for q in instances]
        wait(futures, timeout=30)
        shed = sum(
            1 for f in futures if isinstance(f.exception(), ShedError)
        )
        served = len(futures) - shed
        manager.close()

        # The first submission holds the 1-slot queue for 0.3 s, so the
        # overflow path saw an empty cache and had to shed.
        assert shed >= 1
        totals = obs.audit.outcome_totals(template.name)
        assert totals["shed"] == shed
        assert totals["certified"] + totals["uncertified"] == served
        assert sum(totals.values()) == len(instances)
        # Shed reasons are queryable from the degraded counter.
        assert obs.registry.total(
            "repro_degraded_total", template=template.name, outcome="shed"
        ) == shed

    def test_queue_full_uncertified_serves_are_one_outcome(self):
        """Warm cache + full queue: rejections serve the nearest cached
        plan uncertified — counted once, with a reason code."""
        db, template = make_db(), make_template()
        obs = Observability()
        manager = ConcurrentPQOManager(
            database=db,
            max_workers=1,
            engine_wrapper=simulated_latency_wrapper(optimize_seconds=0.3),
            overload=OverloadPolicy(queue_limit=1, evaluate_every=10**6),
            obs=obs,
        )
        manager.register(template, lam=LAM)
        instances = workload(template, 6)
        manager.process(instances[0])  # warm the cache serially

        futures = [manager.submit(q) for q in instances[1:]]
        wait(futures, timeout=30)
        choices = [f.result() for f in futures]
        manager.close()

        uncertified = sum(1 for c in choices if not c.certified)
        assert uncertified >= 1, "full queue must force degraded serves"
        totals = obs.audit.outcome_totals(template.name)
        assert totals["shed"] == 0
        assert totals["uncertified"] == uncertified
        assert sum(totals.values()) == len(instances)
        assert obs.registry.value(
            "repro_degraded_total", template=template.name,
            outcome="uncertified", reason="queue_full",
        ) == pytest.approx(uncertified)
        assert obs.audit.zero_violations
