"""Tests for workload generation, orderings and the suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.instance import QueryInstance, SelectivityVector
from repro.workload.generator import (
    DEFAULT_BANDS,
    SelectivityBands,
    generate_selectivity_vectors,
    instances_for_template,
)
from repro.workload.orderings import ALL_ORDERINGS, Ordering, order_instances
from repro.workload.suite import SuiteConfig, build_templates
from repro.workload.templates import (
    dimension_sweep_template,
    seed_templates,
)


class TestBands:
    def test_default_bands_valid(self):
        assert DEFAULT_BANDS.small_high <= DEFAULT_BANDS.large_low

    def test_invalid_bands_rejected(self):
        with pytest.raises(ValueError):
            SelectivityBands(small_low=0.5, small_high=0.2)


class TestGenerator:
    def test_count_and_dimensions(self):
        vectors = generate_selectivity_vectors(3, 100, seed=1)
        assert len(vectors) == 100
        assert all(len(v) == 3 for v in vectors)

    def test_deterministic(self):
        a = generate_selectivity_vectors(2, 50, seed=9)
        b = generate_selectivity_vectors(2, 50, seed=9)
        assert a == b

    def test_regions_cover_bucketization(self):
        """The d+2 region scheme: some all-small, some all-large, and
        some large-in-exactly-one-dimension vectors must appear."""
        bands = DEFAULT_BANDS
        vectors = generate_selectivity_vectors(3, 200, seed=2)
        all_small = all_large = one_large = 0
        for v in vectors:
            larges = [s >= bands.large_low for s in v]
            if not any(larges):
                all_small += 1
            elif all(larges):
                all_large += 1
            elif sum(larges) == 1:
                one_large += 1
        assert all_small > 0
        assert all_large > 0
        assert one_large > 0
        # Each region gets ~m/(d+2) = 40 instances.
        assert all_small == pytest.approx(40, abs=2)
        assert all_large == pytest.approx(40, abs=2)

    def test_values_within_bands(self):
        bands = DEFAULT_BANDS
        for v in generate_selectivity_vectors(2, 80, seed=3):
            for s in v:
                in_small = bands.small_low <= s <= bands.small_high
                in_large = bands.large_low <= s <= bands.large_high
                assert in_small or in_large

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_selectivity_vectors(0, 10)
        with pytest.raises(ValueError):
            generate_selectivity_vectors(2, 0)

    def test_instances_carry_sequence_ids(self, toy_template):
        instances = instances_for_template(toy_template, 30, seed=1)
        assert [i.sequence_id for i in instances] == list(range(30))

    def test_instances_with_estimator_carry_parameters(self, toy_db, toy_template):
        instances = instances_for_template(
            toy_template, 10, seed=1, estimator=toy_db.estimator
        )
        assert all(len(i.parameters) == 2 for i in instances)
        # Parameters must reproduce the target selectivities (roundtrip).
        for i in instances[:5]:
            sv = toy_db.estimator.selectivity_vector(
                toy_template, QueryInstance("toy_join", parameters=i.parameters)
            )
            for want, got in zip(i.sv, sv):
                assert got == pytest.approx(want, abs=0.1)


@settings(max_examples=20, deadline=None)
@given(d=st.integers(min_value=1, max_value=8),
       m=st.integers(min_value=1, max_value=150),
       seed=st.integers(min_value=0, max_value=1000))
def test_property_generator_counts(d, m, seed):
    vectors = generate_selectivity_vectors(d, m, seed=seed)
    assert len(vectors) == m
    assert all(0 < s <= 1 for v in vectors for s in v)


class TestOrderings:
    @pytest.fixture()
    def instances(self):
        svs = [SelectivityVector.of(0.1 * (i + 1)) for i in range(8)]
        return [
            QueryInstance("q", sv=sv, sequence_id=i) for i, sv in enumerate(svs)
        ]

    def test_random_is_permutation(self, instances):
        ordered = order_instances(instances, Ordering.RANDOM, seed=3)
        assert len(ordered) == len(instances)
        assert {i.sv for i in ordered} == {i.sv for i in instances}
        assert [i.sequence_id for i in ordered] == list(range(8))

    def test_decreasing_cost(self, instances):
        costs = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0]
        ordered = order_instances(instances, Ordering.DECREASING_COST, costs)
        got = [costs[instances.index(next(
            j for j in instances if j.sv == o.sv))] for o in ordered]
        assert got == sorted(costs, reverse=True)

    def test_round_robin_interleaves_plans(self, instances):
        costs = [1.0] * 8
        plans = ["A", "A", "A", "A", "B", "B", "B", "B"]
        ordered = order_instances(
            instances, Ordering.ROUND_ROBIN_PLANS, costs, plans
        )
        got_plans = [plans[next(
            k for k, j in enumerate(instances) if j.sv == o.sv)] for o in ordered]
        assert got_plans[:4] == ["A", "B", "A", "B"]

    def test_inside_out_starts_near_mean(self, instances):
        costs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]  # mean 4.5
        ordered = order_instances(instances, Ordering.INSIDE_OUT, costs)
        first_cost = costs[next(
            k for k, j in enumerate(instances) if j.sv == ordered[0].sv)]
        assert first_cost in (4.0, 5.0)

    def test_outside_in_starts_at_extremes(self, instances):
        costs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        ordered = order_instances(instances, Ordering.OUTSIDE_IN, costs)
        first_cost = costs[next(
            k for k, j in enumerate(instances) if j.sv == ordered[0].sv)]
        assert first_cost in (1.0, 8.0)

    def test_cost_orderings_require_costs(self, instances):
        with pytest.raises(ValueError, match="optimal costs"):
            order_instances(instances, Ordering.DECREASING_COST)

    def test_round_robin_requires_signatures(self, instances):
        with pytest.raises(ValueError, match="signatures"):
            order_instances(instances, Ordering.ROUND_ROBIN_PLANS, [1.0] * 8)

    def test_all_orderings_enumerated(self):
        assert len(ALL_ORDERINGS) == 5


class TestTemplatesAndSuite:
    def test_seed_templates_valid_and_named_uniquely(self):
        templates = seed_templates()
        names = [t.name for t in templates]
        assert len(names) == len(set(names))
        assert len(templates) >= 15

    def test_about_a_third_high_dimensional(self):
        """The paper: ~1/3 of templates have d >= 4."""
        templates = seed_templates()
        high_d = sum(1 for t in templates if t.dimensions >= 4)
        assert high_d / len(templates) >= 0.25

    def test_dimensions_up_to_ten(self):
        assert max(t.dimensions for t in seed_templates()) == 10

    def test_all_four_databases_covered(self):
        assert {t.database for t in seed_templates()} == {
            "tpch", "tpcds", "rd1", "rd2"
        }

    def test_dimension_sweep_template(self):
        for d in (1, 4, 10, 12):
            assert dimension_sweep_template(d).dimensions == d
        with pytest.raises(ValueError):
            dimension_sweep_template(13)

    def test_build_templates_expansion(self):
        seeds = seed_templates()
        expanded = build_templates(len(seeds) + 10)
        assert len(expanded) == len(seeds) + 10
        names = [t.name for t in expanded]
        assert len(names) == len(set(names))

    def test_build_templates_can_reach_ninety(self):
        templates = build_templates(90)
        assert len(templates) == 90

    def test_suite_config_lengths(self):
        config = SuiteConfig(instances_per_sequence=100, instances_high_d=200)
        low_d = next(t for t in seed_templates() if t.dimensions <= 3)
        high_d = next(t for t in seed_templates() if t.dimensions > 3)
        assert config.sequence_length(low_d) == 100
        assert config.sequence_length(high_d) == 200

    def test_paper_scale_config(self):
        config = SuiteConfig.paper_scale()
        assert config.num_templates == 90
        assert config.instances_per_sequence == 1000
        assert config.instances_high_d == 2000
