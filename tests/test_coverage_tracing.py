"""Tests for cache-coverage analysis and the wired-in tracing."""

import pytest

from repro.core.coverage import sample_coverage
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.engine.tracing import TraceEventKind, TraceLog
from repro.query.instance import QueryInstance, SelectivityVector
from repro.workload.generator import instances_for_template


def fresh_engine(db, template, trace=None) -> EngineAPI:
    from repro.optimizer.optimizer import QueryOptimizer

    optimizer = QueryOptimizer(template, db.stats, db.estimator, db.cost_model)
    return EngineAPI(template, optimizer, db.estimator, trace=trace)


class TestCoverage:
    @pytest.fixture()
    def warmed(self, toy_db, toy_template):
        engine = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=2.0)
        for inst in instances_for_template(toy_template, 150, seed=101):
            scr.process(inst)
        return scr, engine

    def test_empty_cache_zero_coverage(self, toy_db, toy_template):
        from repro.core.plan_cache import PlanCache

        report = sample_coverage(PlanCache(), lam=2.0, dimensions=2,
                                 samples=50, seed=1)
        assert report.selectivity_coverage == 0.0
        assert report.total_coverage == 0.0

    def test_warm_cache_has_positive_coverage(self, warmed):
        scr, engine = warmed
        report = sample_coverage(
            scr.cache, lam=2.0, dimensions=2, samples=200, seed=2,
            recost=engine.recost,
        )
        assert report.selectivity_coverage > 0.0
        assert report.total_coverage >= report.selectivity_coverage
        assert report.total_coverage <= 1.0

    def test_coverage_grows_with_lambda(self, warmed):
        scr, engine = warmed
        tight = sample_coverage(scr.cache, lam=1.1, dimensions=2,
                                samples=200, seed=3)
        loose = sample_coverage(scr.cache, lam=3.0, dimensions=2,
                                samples=200, seed=3)
        assert loose.selectivity_coverage >= tight.selectivity_coverage

    def test_cost_check_extends_coverage(self, warmed):
        """Recost-based coverage strictly contains selectivity coverage
        whenever BCG slack exists (section 5.3's extra opportunities)."""
        scr, engine = warmed
        without = sample_coverage(scr.cache, lam=2.0, dimensions=2,
                                  samples=300, seed=4)
        with_recost = sample_coverage(scr.cache, lam=2.0, dimensions=2,
                                      samples=300, seed=4,
                                      recost=engine.recost)
        assert with_recost.total_coverage >= without.total_coverage
        assert with_recost.cost_check_hits > 0

    def test_dimension_mismatch_rejected(self, warmed):
        scr, _ = warmed
        with pytest.raises(ValueError, match="dimensions"):
            sample_coverage(scr.cache, lam=2.0, dimensions=3, samples=10)

    def test_invalid_lambda(self, warmed):
        scr, _ = warmed
        with pytest.raises(ValueError, match="lambda"):
            sample_coverage(scr.cache, lam=0.5, dimensions=2, samples=10)


class TestWiredTracing:
    def test_scr_records_decisions(self, toy_db, toy_template):
        trace = TraceLog()
        engine = fresh_engine(toy_db, toy_template, trace=trace)
        scr = SCR(engine, lam=2.0, trace=trace)
        scr.process(QueryInstance("t", sv=SelectivityVector.of(0.2, 0.2)))
        scr.process(QueryInstance("t", sv=SelectivityVector.of(0.21, 0.2)))
        decisions = trace.decisions()
        assert len(decisions) == 2
        assert decisions[0].check == "optimizer"
        assert decisions[1].check in ("selectivity", "cost")
        # Reuse decisions carry the certified bound.
        assert decisions[1].certified_bound is not None
        assert decisions[1].certified_bound <= 2.0

    def test_engine_records_api_calls(self, toy_db, toy_template):
        trace = TraceLog()
        engine = fresh_engine(toy_db, toy_template, trace=trace)
        result = engine.optimize(SelectivityVector.of(0.3, 0.3))
        engine.recost(result.shrunken_memo, SelectivityVector.of(0.4, 0.4))
        assert len(list(trace.of_kind(TraceEventKind.OPTIMIZE))) == 1
        assert len(list(trace.of_kind(TraceEventKind.RECOST))) == 1

    def test_summary_over_run(self, toy_db, toy_template):
        trace = TraceLog()
        engine = fresh_engine(toy_db, toy_template, trace=trace)
        scr = SCR(engine, lam=2.0, trace=trace)
        for inst in instances_for_template(toy_template, 50, seed=103):
            scr.process(inst)
        counts = trace.check_counts()
        assert counts.get("optimizer", 0) == scr.optimizer_calls
        assert sum(counts.values()) == 50
