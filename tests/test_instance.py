"""Tests for selectivity vectors and query instances."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.instance import QueryInstance, SelectivityVector

sel = st.floats(min_value=1e-6, max_value=1.0, exclude_min=False)
vectors = st.integers(min_value=1, max_value=6).flatmap(
    lambda d: st.tuples(*([sel] * d))
)


class TestSelectivityVector:
    def test_constructors_agree(self):
        assert SelectivityVector.of(0.1, 0.2) == SelectivityVector.from_sequence(
            [0.1, 0.2]
        )

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            SelectivityVector.of(0.0, 0.5)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            SelectivityVector.of(1.5)

    def test_indexing_and_len(self):
        sv = SelectivityVector.of(0.1, 0.2, 0.3)
        assert len(sv) == 3
        assert sv[1] == 0.2
        assert list(sv) == [0.1, 0.2, 0.3]

    def test_ratios(self):
        a = SelectivityVector.of(0.1, 0.4)
        b = SelectivityVector.of(0.2, 0.1)
        assert a.ratios(b) == pytest.approx((2.0, 0.25))

    def test_ratios_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            SelectivityVector.of(0.1).ratios(SelectivityVector.of(0.1, 0.2))

    def test_log_distance_is_ln_gl(self):
        a = SelectivityVector.of(0.1, 0.4)
        b = SelectivityVector.of(0.2, 0.1)
        # G = 2, L = 4 -> ln(GL) = ln 8
        assert a.log_distance(b) == pytest.approx(math.log(8.0))

    def test_dominates(self):
        a = SelectivityVector.of(0.5, 0.5)
        b = SelectivityVector.of(0.4, 0.5)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert a.dominates(a)

    def test_euclidean_distance(self):
        a = SelectivityVector.of(0.1, 0.1)
        b = SelectivityVector.of(0.4, 0.5)
        assert a.euclidean_distance(b) == pytest.approx(0.5)


@settings(max_examples=100, deadline=None)
@given(vectors, vectors)
def test_property_log_distance_symmetric(xs, ys):
    if len(xs) != len(ys):
        return
    a = SelectivityVector(xs)
    b = SelectivityVector(ys)
    assert a.log_distance(b) == pytest.approx(b.log_distance(a), rel=1e-9)


@settings(max_examples=100, deadline=None)
@given(vectors)
def test_property_self_distance_zero(xs):
    a = SelectivityVector(xs)
    assert a.log_distance(a) == pytest.approx(0.0, abs=1e-12)
    assert a.dominates(a)


@settings(max_examples=100, deadline=None)
@given(vectors, vectors)
def test_property_mutual_domination_implies_equal(xs, ys):
    if len(xs) != len(ys):
        return
    a = SelectivityVector(xs)
    b = SelectivityVector(ys)
    if a.dominates(b) and b.dominates(a):
        assert xs == ys


class TestQueryInstance:
    def test_selectivities_requires_sv(self):
        inst = QueryInstance("t", parameters=(1.0,))
        with pytest.raises(ValueError, match="selectivity vector"):
            _ = inst.selectivities

    def test_with_selectivities(self):
        inst = QueryInstance("t", parameters=(1.0,))
        sv = SelectivityVector.of(0.5)
        updated = inst.with_selectivities(sv)
        assert updated.selectivities == sv
        assert updated.template_name == "t"

    def test_with_sequence_id(self):
        inst = QueryInstance("t")
        assert inst.with_sequence_id(7).sequence_id == 7
