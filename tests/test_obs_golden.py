"""Golden-file tests for the observability exporters.

The Prometheus text exposition is byte-compared against a checked-in
fixture — deterministic family/label ordering and number formatting are
part of the exporter's contract (scrape pipelines and dashboards parse
it).  The JSONL span stream is likewise byte-compared (under a fake
clock) and schema-checked, companion to ``test_trace_golden.py``.

Regenerate after an *intentional* format change with::

    PYTHONPATH=src:tests python tests/test_obs_golden.py --regen
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.core.get_plan import CHECK_IMPLS
from repro.obs import (
    SPAN_SCHEMA_VERSION,
    FakeClock,
    IdSource,
    MetricsRegistry,
    Observability,
    SpanRecorder,
    activate,
    start_trace,
    to_prometheus,
    write_spans_jsonl,
)

PROM_FIXTURE = Path(__file__).parent / "fixtures" / "golden_metrics.prom"
SPANS_FIXTURE = Path(__file__).parent / "fixtures" / "golden_spans.jsonl"
SCR_METRICS_FIXTURE = (
    Path(__file__).parent / "fixtures" / "golden_scr_metrics.prom"
)


def build_golden_registry() -> MetricsRegistry:
    """A small registry exercising every exposition feature: all three
    kinds, multiple label sets, integer vs float formatting, bucket
    edges hit exactly, the +Inf tail, and label-value escaping."""
    registry = MetricsRegistry()
    responses = registry.counter(
        "repro_responses_total",
        "Served responses by template and guarantee outcome",
        labels=("template", "outcome"),
    )
    responses.labels(template="t1", outcome="certified").inc(41)
    responses.labels(template="t1", outcome="uncertified").inc(2)
    responses.labels(template="t2", outcome="certified").inc(7)

    depth = registry.gauge(
        "repro_queue_depth", "Outstanding requests", labels=("template",)
    )
    depth.labels(template="t1").set(3)
    depth.labels(template="t2").set(0.5)

    bounds = registry.histogram(
        "repro_certified_bound",
        "Certified sub-optimality bounds per response",
        labels=("template",),
        buckets=(1.0, 1.5, 2.0),
    )
    child = bounds.labels(template="t1")
    for value in (1.0, 1.2, 1.5, 1.9, 2.0, 2.5):
        child.observe(value)

    weird = registry.counter(
        "repro_escaping_total", "Label-value escaping", labels=("detail",)
    )
    weird.labels(detail='quote " backslash \\ newline \n end').inc()
    return registry


def build_golden_spans() -> SpanRecorder:
    """Deterministic spans on a fake clock, one per pipeline phase.

    Since schema v2 every span carries the causal trace/span/parent ID
    triple: the whole fixture is one request's trace, with the inner
    phases parented under the ``serving.process`` request span — the
    seeded :class:`IdSource` keeps the IDs byte-stable.
    """
    fake = FakeClock()
    ids = IdSource(seed=17)
    recorder = SpanRecorder(clock=fake.clock)
    recorder.ids = ids
    ctx = start_trace(ids=ids)
    phases = [
        ("scr.selectivity_check", 0.001,
         {"hit": False, "candidates": 2, "scanned": 4}),
        ("scr.cost_check", 0.004,
         {"hit": True, "recost_calls": 2, "bound": 1.42,
          "certificate": "exact"}),
        ("engine.recost", 0.002, {"template": "t1", "seq": 0}),
        ("scr.redundancy_check", 0.003, {"template": "t1", "cached": True}),
    ]
    with activate(ctx):
        for name, duration, attrs in phases:
            start = fake.monotonic()
            fake.advance(duration)
            recorder.record(name, start, duration, **attrs)
        recorder.record(
            "serving.process", 0.0, 0.012, span_id=ctx.span_id,
            template="t1", seq=0, outcome="certified", check="cost",
            certificate="exact", certified_bound=1.42, recost_calls=2,
        )
    return recorder


def render_spans() -> str:
    buffer = io.StringIO()
    write_spans_jsonl(build_golden_spans(), buffer, include_timing=True)
    return buffer.getvalue()


def _strip_wall_clock_families(prom: str) -> str:
    """Drop metric families whose sample values embed real wall-clock
    durations (``*_seconds*``): the engine times calls with
    ``time.perf_counter`` so their sums/buckets vary run to run, while
    every other family (outcomes, certificates, certified bounds,
    violations, faults, breaker state) is decision-determined."""
    out: list[str] = []
    skip = False
    for line in prom.splitlines(keepends=True):
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            skip = "_seconds" in line.split()[2]
        if not skip:
            out.append(line)
    return "".join(out)


def build_golden_scr_metrics(check_impl: str = "scalar") -> str:
    """Metrics exposition of the canonical serial SCR run.

    Companion to ``test_trace_golden.build_golden_trace``: the same
    40-instance workload, but observed through an
    :class:`Observability` handle so the guarantee-audit metric
    families become part of the golden contract.  Both check
    implementations must render the identical exposition.
    """
    from conftest import build_toy_schema
    from test_trace_golden import canonical_template

    from repro.core.scr import SCR
    from repro.engine.database import Database
    from repro.query.instance import QueryInstance
    from repro.workload.generator import generate_selectivity_vectors

    db = Database.create(build_toy_schema(), seed=11)
    template = canonical_template()
    engine = db.engine(template)
    obs = Observability(clock=FakeClock().clock, spans_enabled=False)
    scr = SCR(
        engine, lam=2.0, plan_budget=3, obs=obs, check_impl=check_impl
    )
    for sv in generate_selectivity_vectors(2, 40, seed=21):
        scr.process(QueryInstance(template.name, sv=sv))
    # The engine object is cached per database: detach the instruments
    # so later builds (or other tests reusing the toy db) start clean.
    base = engine
    while getattr(base, "inner", None) is not None:
        base = base.inner
    base.obs = None
    base.instruments = None
    return _strip_wall_clock_families(to_prometheus(obs.registry))


def test_prometheus_exposition_matches_golden_fixture():
    rendered = to_prometheus(build_golden_registry())
    expected = PROM_FIXTURE.read_text(encoding="utf-8")
    assert rendered == expected, (
        "Prometheus exposition drifted from the golden fixture; if the "
        "change is intentional, regenerate with "
        "`PYTHONPATH=src:tests python tests/test_obs_golden.py --regen`"
    )


def test_prometheus_histogram_expansion_is_cumulative():
    text = to_prometheus(build_golden_registry())
    lines = [
        line for line in text.splitlines()
        if line.startswith("repro_certified_bound_bucket")
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts), "bucket counts must be cumulative"
    assert lines[-1].startswith(
        'repro_certified_bound_bucket{template="t1",le="+Inf"}'
    )
    assert 'repro_certified_bound_count{template="t1"} 6' in text


def test_spans_jsonl_matches_golden_fixture():
    assert render_spans() == SPANS_FIXTURE.read_text(encoding="utf-8")


def test_spans_jsonl_schema():
    lines = render_spans().splitlines()
    header = json.loads(lines[0])
    assert header == {"schema": "repro.spans", "version": SPAN_SCHEMA_VERSION}
    rows = [json.loads(line) for line in lines[1:]]
    assert len(rows) == 5
    for i, row in enumerate(rows):
        assert set(row) <= {
            "span", "seq", "start_s", "duration_s", "attrs",
            "trace_id", "span_id", "parent_id",
        }
        assert isinstance(row["span"], str)
        assert row["seq"] == i               # recorder-assigned, gapless
        assert isinstance(row["start_s"], (int, float))
        assert isinstance(row["duration_s"], (int, float))
        assert isinstance(row.get("attrs", {}), dict)
    names = [row["span"] for row in rows]
    assert names == [
        "scr.selectivity_check", "scr.cost_check", "engine.recost",
        "scr.redundancy_check", "serving.process",
    ]
    # One connected trace: every row shares the trace_id, the request
    # span owns its ID, and every inner phase parents under it.
    trace_ids = {row["trace_id"] for row in rows}
    assert len(trace_ids) == 1 and "" not in trace_ids
    process = rows[-1]
    assert process["span_id"]
    for row in rows[:-1]:
        assert row["parent_id"] == process["span_id"]


@pytest.mark.parametrize("check_impl", CHECK_IMPLS)
def test_scr_metrics_match_golden_fixture(check_impl):
    """One fixture, both check implementations — the columnar hot path
    must leave every decision-determined metric byte-identical."""
    assert SCR_METRICS_FIXTURE.exists(), (
        f"missing fixture {SCR_METRICS_FIXTURE}; regenerate with "
        "`PYTHONPATH=src:tests python tests/test_obs_golden.py --regen`"
    )
    expected = SCR_METRICS_FIXTURE.read_text(encoding="utf-8")
    actual = build_golden_scr_metrics(check_impl)
    assert actual == expected, (
        f"SCR metrics exposition (check_impl={check_impl!r}) drifted "
        "from the golden fixture; regenerate only for intentional "
        "metric-contract changes"
    )


def test_scr_metrics_golden_has_zero_lambda_violations():
    text = build_golden_scr_metrics("vectorized")
    assert "repro_lambda_violations_total" in text
    for line in text.splitlines():
        if line.startswith("repro_lambda_violations_total{"):
            assert line.rsplit(" ", 1)[1] == "0"


def test_spans_jsonl_without_timing_is_reproducible():
    buffer = io.StringIO()
    write_spans_jsonl(build_golden_spans(), buffer, include_timing=False)
    rows = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert all("start_s" not in row and "duration_s" not in row
               for row in rows)


def _regen() -> None:
    PROM_FIXTURE.write_text(
        to_prometheus(build_golden_registry()), encoding="utf-8"
    )
    SPANS_FIXTURE.write_text(render_spans(), encoding="utf-8")
    SCR_METRICS_FIXTURE.write_text(
        build_golden_scr_metrics(), encoding="utf-8"
    )
    print(f"wrote {PROM_FIXTURE}")
    print(f"wrote {SPANS_FIXTURE}")
    print(f"wrote {SCR_METRICS_FIXTURE}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
