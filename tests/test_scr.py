"""End-to-end tests for the SCR technique, including its guarantee."""

import pytest

from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.query.instance import QueryInstance, SelectivityVector
from repro.workload.generator import instances_for_template


def fresh_engine(db, template) -> EngineAPI:
    from repro.optimizer.optimizer import QueryOptimizer

    optimizer = QueryOptimizer(template, db.stats, db.estimator, db.cost_model)
    return EngineAPI(template, optimizer, db.estimator)


@pytest.fixture()
def scr_engine(toy_db, toy_template):
    return fresh_engine(toy_db, toy_template)


class TestBasicFlow:
    def test_first_instance_optimizes(self, scr_engine):
        scr = SCR(scr_engine, lam=2.0)
        choice = scr.process(QueryInstance(
            "toy_join", sv=SelectivityVector.of(0.1, 0.1)))
        assert choice.used_optimizer
        assert choice.optimal_cost is not None
        assert scr.plans_cached == 1

    def test_nearby_instance_reuses_via_selectivity_check(self, scr_engine):
        scr = SCR(scr_engine, lam=2.0)
        scr.process(QueryInstance("toy_join", sv=SelectivityVector.of(0.1, 0.1)))
        choice = scr.process(QueryInstance(
            "toy_join", sv=SelectivityVector.of(0.12, 0.1)))
        assert not choice.used_optimizer
        assert choice.check == "selectivity"
        assert scr_engine.counters.optimize.calls == 1

    def test_name_embeds_lambda(self, scr_engine):
        assert SCR(scr_engine, lam=1.5).name == "SCR1.5"

    def test_optimizer_calls_counted(self, scr_engine):
        scr = SCR(scr_engine, lam=2.0)
        scr.process(QueryInstance("toy_join", sv=SelectivityVector.of(0.001, 0.001)))
        scr.process(QueryInstance("toy_join", sv=SelectivityVector.of(0.9, 0.9)))
        assert scr.optimizer_calls == 2
        assert scr.instances_processed == 2


class TestGuarantee:
    @pytest.mark.parametrize("lam", [1.1, 1.5, 2.0])
    def test_lambda_optimality_holds(self, toy_db, toy_template, lam):
        """The headline guarantee: SO(q) <= lambda for every instance,
        modulo BCG violations (counted and required to be rare)."""
        engine = fresh_engine(toy_db, toy_template)
        oracle = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=lam)
        instances = instances_for_template(toy_template, 150, seed=3)
        violations = 0
        for inst in instances:
            choice = scr.process(inst)
            optimal = oracle.optimize(inst.selectivities)
            chosen_cost = oracle.recost(choice.shrunken_memo, inst.selectivities)
            so = chosen_cost / optimal.cost
            if so > lam * 1.001:
                violations += 1
        # The paper observes rare violations; on the toy database the
        # linear-BCG-compliant operators dominate, so allow only a few.
        assert violations <= len(instances) * 0.02

    def test_fewer_optimizer_calls_with_larger_lambda(self, toy_db, toy_template):
        counts = {}
        instances = instances_for_template(toy_template, 200, seed=5)
        for lam in (1.1, 2.0):
            engine = fresh_engine(toy_db, toy_template)
            scr = SCR(engine, lam=lam)
            for inst in instances:
                scr.process(inst)
            counts[lam] = scr.optimizer_calls
        assert counts[2.0] < counts[1.1]

    def test_fewer_plans_with_larger_lambda(self, toy_db, toy_template):
        plans = {}
        instances = instances_for_template(toy_template, 200, seed=5)
        for lam in (1.1, 2.0):
            engine = fresh_engine(toy_db, toy_template)
            scr = SCR(engine, lam=lam)
            for inst in instances:
                scr.process(inst)
            plans[lam] = scr.max_plans_cached
        assert plans[2.0] <= plans[1.1]


class TestPlanBudget:
    def test_budget_respected(self, toy_db, toy_template):
        engine = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=1.1, plan_budget=3, lambda_r=1.0)
        for inst in instances_for_template(toy_template, 150, seed=2):
            scr.process(inst)
        assert scr.plans_cached <= 3

    def test_budget_increases_optimizer_calls(self, toy_db, toy_template):
        instances = instances_for_template(toy_template, 200, seed=9)
        calls = {}
        for budget in (None, 2):
            engine = fresh_engine(toy_db, toy_template)
            scr = SCR(engine, lam=1.1, plan_budget=budget, lambda_r=1.0)
            for inst in instances:
                scr.process(inst)
            calls[budget] = scr.optimizer_calls
        assert calls[2] >= calls[None]


class TestRecostAccounting:
    def test_engine_recost_calls_bounded_by_cap(self, toy_db, toy_template):
        engine = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=1.2, max_recost_candidates=2, lambda_r=1.0)
        for inst in instances_for_template(toy_template, 100, seed=4):
            scr.process(inst)
        # Each getPlan makes at most 2 cost-check recosts; redundancy
        # checks are disabled (lambda_r=1), so the cap binds per call.
        assert scr.get_plan.max_recost_calls_single <= 2

    def test_selectivity_hits_need_no_recost(self, scr_engine):
        scr = SCR(scr_engine, lam=3.0)
        scr.process(QueryInstance("toy_join", sv=SelectivityVector.of(0.2, 0.2)))
        before = scr_engine.counters.recost.calls
        choice = scr.process(QueryInstance(
            "toy_join", sv=SelectivityVector.of(0.21, 0.21)))
        assert choice.check == "selectivity"
        assert scr_engine.counters.recost.calls == before


class TestAppendixFIntegration:
    def test_purge_callable_after_run(self, toy_db, toy_template):
        engine = fresh_engine(toy_db, toy_template)
        scr = SCR(engine, lam=2.0, lambda_r=1.0)
        for inst in instances_for_template(toy_template, 100, seed=6):
            scr.process(inst)
        before = scr.plans_cached
        dropped = scr.purge_redundant_plans()
        assert scr.plans_cached == before - dropped
