"""Failure-injection tests: SCR under a misbehaving cost model.

The paper's guarantee is conditional on the BCG assumption; Appendix G
describes detecting and containing violations.  These tests *inject*
cost models that break the assumptions — discontinuities, non-monotone
regions, super-linear growth — and verify that (a) nothing crashes,
(b) the violation detector notices, and (c) the damage to MSO stays
localized (the paper's observation that SCR's small regions limit harm).
"""

import math

import pytest

from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.optimizer.cost_model import CostModel, CostParameters
from repro.optimizer.optimizer import QueryOptimizer
from repro.query.instance import QueryInstance, SelectivityVector
from repro.workload.generator import instances_for_template


class SpikyCostModel(CostModel):
    """A cost model with a violent discontinuity in scan costs.

    Below the threshold output size, scans are priced normally; above
    it they get a large constant penalty — modelling a memory cliff far
    sharper than BCG's f(α)=α allows.
    """

    def __init__(self, threshold_rows: float = 2_000.0, penalty: float = 50_000.0):
        super().__init__(CostParameters())
        self.threshold_rows = threshold_rows
        self.penalty = penalty

    def seq_scan(self, table_rows: float, out_rows: float) -> float:
        base = super().seq_scan(table_rows, out_rows)
        return base + (self.penalty if out_rows > self.threshold_rows else 0.0)

    def index_scan(self, table_rows: float, out_rows: float) -> float:
        base = super().index_scan(table_rows, out_rows)
        return base + (self.penalty if out_rows > self.threshold_rows else 0.0)


class NonMonotoneCostModel(CostModel):
    """Breaks PCM: scan cost *decreases* over a band of output sizes."""

    def seq_scan(self, table_rows: float, out_rows: float) -> float:
        base = super().seq_scan(table_rows, out_rows)
        if 1_000.0 < out_rows < 3_000.0:
            return base * 0.3
        return base


def engine_with(cost_model: CostModel, db, template) -> EngineAPI:
    optimizer = QueryOptimizer(template, db.stats, db.estimator, cost_model)
    return EngineAPI(template, optimizer, db.estimator)


class TestSpikyCosts:
    def test_run_completes_and_detector_sees_violations(
        self, toy_db, toy_template
    ):
        engine = engine_with(SpikyCostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.5)
        for inst in instances_for_template(toy_template, 250, seed=61):
            scr.process(inst)
        # The run completes; statistics are coherent.
        assert scr.instances_processed == 250
        assert scr.plans_cached >= 1
        # A discontinuity this size across region boundaries should be
        # noticed by the Appendix G detector at least occasionally
        # (cost checks straddling the cliff).
        assert scr.detector is not None

    def test_mso_damage_bounded_by_penalty_scale(self, toy_db, toy_template):
        """Even with violations, sub-optimality cannot exceed the
        injected penalty's relative magnitude by much."""
        spiky = SpikyCostModel(threshold_rows=2_000.0, penalty=20_000.0)
        engine = engine_with(spiky, toy_db, toy_template)
        oracle = engine_with(spiky, toy_db, toy_template)
        scr = SCR(engine, lam=2.0)
        worst = 1.0
        for inst in instances_for_template(toy_template, 200, seed=67):
            choice = scr.process(inst)
            truth = oracle.optimize(inst.selectivities)
            so = oracle.recost(
                choice.shrunken_memo, inst.selectivities) / truth.cost
            worst = max(worst, so)
        # The guarantee can be violated (as the paper observes), but a
        # reasonable ceiling holds: the cliff is a bounded additive term.
        assert worst < 50.0

    def test_retired_anchors_stop_bad_inferences(self, toy_db, toy_template):
        engine = engine_with(SpikyCostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.5, detect_violations=True)
        for inst in instances_for_template(toy_template, 250, seed=71):
            scr.process(inst)
        if scr.detector.anchors_retired:
            retired = [e for e in scr.cache.instances() if e.retired]
            assert len(retired) == scr.detector.anchors_retired


class TestNonMonotoneCosts:
    def test_pcm_violations_detectable(self, toy_db, toy_template):
        engine = engine_with(NonMonotoneCostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.3)
        for inst in instances_for_template(toy_template, 250, seed=73):
            scr.process(inst)
        assert scr.instances_processed == 250
        # Detector statistics are consistent.
        det = scr.detector
        assert det.anchors_retired <= det.violations_detected


class TestDetectorDisabled:
    def test_runs_without_detector(self, toy_db, toy_template):
        engine = engine_with(SpikyCostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.5, detect_violations=False)
        for inst in instances_for_template(toy_template, 100, seed=79):
            scr.process(inst)
        assert scr.detector is None


class TestDegenerateInputs:
    def test_single_instance_workload(self, toy_db, toy_template):
        engine = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=2.0)
        choice = scr.process(QueryInstance(
            "t", sv=SelectivityVector.of(0.5, 0.5)))
        assert choice.used_optimizer
        assert scr.plans_cached == 1

    def test_identical_instances_reuse_forever(self, toy_db, toy_template):
        engine = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.0 + 1e-12)
        sv = SelectivityVector.of(0.3, 0.3)
        for _ in range(20):
            scr.process(QueryInstance("t", sv=sv))
        assert scr.optimizer_calls == 1

    def test_extreme_selectivities(self, toy_db, toy_template):
        engine = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=2.0)
        for sv in (
            SelectivityVector.of(1e-6, 1e-6),
            SelectivityVector.of(1.0, 1.0),
            SelectivityVector.of(1e-6, 1.0),
        ):
            choice = scr.process(QueryInstance("t", sv=sv))
            assert choice.plan_signature

    def test_lambda_exactly_one(self, toy_db, toy_template):
        """λ=1 demands exact optimality: only identical-sv reuse works."""
        engine = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.0)
        svs = [SelectivityVector.of(0.1 + 0.07 * i, 0.2) for i in range(8)]
        for sv in svs:
            scr.process(QueryInstance("t", sv=sv))
        # Different selectivities -> everything optimizes.
        assert scr.optimizer_calls == len(svs)
