"""Failure-injection tests: SCR under a misbehaving cost model and
under a misbehaving *engine*.

The paper's guarantee is conditional on the BCG assumption; Appendix G
describes detecting and containing violations.  The first half of this
file *injects* cost models that break the assumptions — discontinuities,
non-monotone regions, super-linear growth — and verifies that (a)
nothing crashes, (b) the violation detector notices, and (c) the damage
to MSO stays localized.  The second half injects *API-level* faults —
recost raising on the Nth call, optimizer timeouts, NaN selectivity
vectors — and verifies the resilience layer's core invariant: SCR never
certifies a bound it did not verify, and every certified instance still
satisfies ``SO(q) ≤ λ``.
"""

import math


from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.engine.faults import (
    EngineTimeoutError,
    FaultConfig,
    FaultInjector,
    TransientEngineError,
)
from repro.engine.resilience import (
    OptimizeUnavailableError,
    ResiliencePolicy,
    ResilientEngineAPI,
    RetryPolicy,
)
from repro.optimizer.cost_model import CostModel, CostParameters
from repro.optimizer.optimizer import QueryOptimizer
from repro.query.instance import QueryInstance, SelectivityVector
from repro.workload.generator import instances_for_template


class SpikyCostModel(CostModel):
    """A cost model with a violent discontinuity in scan costs.

    Below the threshold output size, scans are priced normally; above
    it they get a large constant penalty — modelling a memory cliff far
    sharper than BCG's f(α)=α allows.
    """

    def __init__(self, threshold_rows: float = 2_000.0, penalty: float = 50_000.0):
        super().__init__(CostParameters())
        self.threshold_rows = threshold_rows
        self.penalty = penalty

    def seq_scan(self, table_rows: float, out_rows: float) -> float:
        base = super().seq_scan(table_rows, out_rows)
        return base + (self.penalty if out_rows > self.threshold_rows else 0.0)

    def index_scan(self, table_rows: float, out_rows: float) -> float:
        base = super().index_scan(table_rows, out_rows)
        return base + (self.penalty if out_rows > self.threshold_rows else 0.0)


class NonMonotoneCostModel(CostModel):
    """Breaks PCM: scan cost *decreases* over a band of output sizes."""

    def seq_scan(self, table_rows: float, out_rows: float) -> float:
        base = super().seq_scan(table_rows, out_rows)
        if 1_000.0 < out_rows < 3_000.0:
            return base * 0.3
        return base


def engine_with(cost_model: CostModel, db, template) -> EngineAPI:
    optimizer = QueryOptimizer(template, db.stats, db.estimator, cost_model)
    return EngineAPI(template, optimizer, db.estimator)


class TestSpikyCosts:
    def test_run_completes_and_detector_sees_violations(
        self, toy_db, toy_template
    ):
        engine = engine_with(SpikyCostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.5)
        for inst in instances_for_template(toy_template, 250, seed=61):
            scr.process(inst)
        # The run completes; statistics are coherent.
        assert scr.instances_processed == 250
        assert scr.plans_cached >= 1
        # A discontinuity this size across region boundaries should be
        # noticed by the Appendix G detector at least occasionally
        # (cost checks straddling the cliff).
        assert scr.detector is not None

    def test_mso_damage_bounded_by_penalty_scale(self, toy_db, toy_template):
        """Even with violations, sub-optimality cannot exceed the
        injected penalty's relative magnitude by much."""
        spiky = SpikyCostModel(threshold_rows=2_000.0, penalty=20_000.0)
        engine = engine_with(spiky, toy_db, toy_template)
        oracle = engine_with(spiky, toy_db, toy_template)
        scr = SCR(engine, lam=2.0)
        worst = 1.0
        for inst in instances_for_template(toy_template, 200, seed=67):
            choice = scr.process(inst)
            truth = oracle.optimize(inst.selectivities)
            so = oracle.recost(
                choice.shrunken_memo, inst.selectivities) / truth.cost
            worst = max(worst, so)
        # The guarantee can be violated (as the paper observes), but a
        # reasonable ceiling holds: the cliff is a bounded additive term.
        assert worst < 50.0

    def test_retired_anchors_stop_bad_inferences(self, toy_db, toy_template):
        engine = engine_with(SpikyCostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.5, detect_violations=True)
        for inst in instances_for_template(toy_template, 250, seed=71):
            scr.process(inst)
        if scr.detector.anchors_retired:
            retired = [e for e in scr.cache.instances() if e.retired]
            assert len(retired) == scr.detector.anchors_retired


class TestNonMonotoneCosts:
    def test_pcm_violations_detectable(self, toy_db, toy_template):
        engine = engine_with(NonMonotoneCostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.3)
        for inst in instances_for_template(toy_template, 250, seed=73):
            scr.process(inst)
        assert scr.instances_processed == 250
        # Detector statistics are consistent.
        det = scr.detector
        assert det.anchors_retired <= det.violations_detected


class TestDetectorDisabled:
    def test_runs_without_detector(self, toy_db, toy_template):
        engine = engine_with(SpikyCostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.5, detect_violations=False)
        for inst in instances_for_template(toy_template, 100, seed=79):
            scr.process(inst)
        assert scr.detector is None


class TestDegenerateInputs:
    def test_single_instance_workload(self, toy_db, toy_template):
        engine = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=2.0)
        choice = scr.process(QueryInstance(
            "t", sv=SelectivityVector.of(0.5, 0.5)))
        assert choice.used_optimizer
        assert scr.plans_cached == 1

    def test_identical_instances_reuse_forever(self, toy_db, toy_template):
        engine = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.0 + 1e-12)
        sv = SelectivityVector.of(0.3, 0.3)
        for _ in range(20):
            scr.process(QueryInstance("t", sv=sv))
        assert scr.optimizer_calls == 1

    def test_extreme_selectivities(self, toy_db, toy_template):
        engine = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=2.0)
        for sv in (
            SelectivityVector.of(1e-6, 1e-6),
            SelectivityVector.of(1.0, 1.0),
            SelectivityVector.of(1e-6, 1.0),
        ):
            choice = scr.process(QueryInstance("t", sv=sv))
            assert choice.plan_signature

    def test_lambda_exactly_one(self, toy_db, toy_template):
        """λ=1 demands exact optimality: only identical-sv reuse works."""
        engine = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(engine, lam=1.0)
        svs = [SelectivityVector.of(0.1 + 0.07 * i, 0.2) for i in range(8)]
        for sv in svs:
            scr.process(QueryInstance("t", sv=sv))
        # Different selectivities -> everything optimizes.
        assert scr.optimizer_calls == len(svs)


# ---------------------------------------------------------------------------
# API-level fault injection: flaky engine behind the resilience layer.
# ---------------------------------------------------------------------------

NO_SLEEP = lambda seconds: None  # noqa: E731

FAST_POLICY = ResiliencePolicy(
    retry=RetryPolicy(max_attempts=3, base_backoff=0.0, max_backoff=0.0),
)


class _NthCallFails:
    """Wraps an engine; one chosen API raises on every Nth raw call."""

    def __init__(self, engine, api: str, n: int, error=TransientEngineError):
        self.inner = engine
        self.api = api
        self.n = n
        self.error = error
        self._counts = {"optimize": 0, "recost": 0, "selectivity": 0}

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def begin_instance(self, index):
        self.inner.begin_instance(index)

    def _maybe_fail(self, api):
        self._counts[api] += 1
        if api == self.api and self._counts[api] % self.n == 0:
            raise self.error(f"injected {api} failure on call {self._counts[api]}")

    def selectivity_vector(self, instance):
        self._maybe_fail("selectivity")
        return self.inner.selectivity_vector(instance)

    def optimize(self, sv):
        self._maybe_fail("optimize")
        return self.inner.optimize(sv)

    def recost(self, shrunken, sv):
        self._maybe_fail("recost")
        return self.inner.recost(shrunken, sv)


def _assert_certified_within_lambda(scr, choices, instances, oracle, lam):
    """Every *certified* instance must satisfy SO(q) <= λ."""
    checked = 0
    for choice, inst in zip(choices, instances):
        if not choice.certified:
            continue
        truth = oracle.optimize(inst.selectivities)
        chosen = (
            truth.cost
            if choice.plan_signature == truth.plan.signature()
            else oracle.recost(choice.shrunken_memo, inst.selectivities)
        )
        so = chosen / truth.cost
        assert so <= lam * (1 + 1e-9), (
            f"certified instance violated the bound: SO={so:.4f} > λ={lam}"
        )
        checked += 1
    assert checked > 0


class TestFlakyRecostAPI:
    def test_recost_raises_every_nth_call(self, toy_db, toy_template):
        lam = 1.5
        flaky = _NthCallFails(
            engine_with(CostModel(), toy_db, toy_template), "recost", n=3
        )
        resilient = ResilientEngineAPI(flaky, policy=FAST_POLICY, sleep=NO_SLEEP)
        oracle = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(resilient, lam=lam)
        instances = instances_for_template(toy_template, 150, seed=83)
        choices = [scr.process(inst) for inst in instances]
        assert scr.instances_processed == 150
        # Flaky recosts cost extra optimizer calls, never bad certifications.
        _assert_certified_within_lambda(scr, choices, instances, oracle, lam)
        res = resilient.counters.resilience
        assert res.faults_recost > 0

    def test_failed_recost_is_never_a_hit(self, toy_db, toy_template):
        """With recost *always* failing, no cost-check hit can occur."""
        flaky = _NthCallFails(
            engine_with(CostModel(), toy_db, toy_template), "recost", n=1
        )
        resilient = ResilientEngineAPI(flaky, policy=FAST_POLICY, sleep=NO_SLEEP)
        scr = SCR(resilient, lam=1.5)
        for inst in instances_for_template(toy_template, 80, seed=89):
            scr.process(inst)
        assert scr.get_plan.cost_hits == 0
        assert resilient.counters.resilience.recost_failed_closed > 0


class TestOptimizerTimeouts:
    def test_optimize_times_out_then_degrades(self, toy_db, toy_template):
        lam = 2.0
        flaky = _NthCallFails(
            engine_with(CostModel(), toy_db, toy_template),
            "optimize", n=2, error=EngineTimeoutError,
        )
        # max_attempts=1 so every 2nd optimize call exhausts immediately.
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1, base_backoff=0.0, max_backoff=0.0)
        )
        resilient = ResilientEngineAPI(flaky, policy=policy, sleep=NO_SLEEP)
        oracle = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(resilient, lam=lam)
        instances = instances_for_template(toy_template, 150, seed=97)
        choices = [scr.process(inst) for inst in instances]
        fallbacks = [c for c in choices if c.check == "fallback"]
        assert fallbacks, "expected at least one optimizer fallback"
        assert all(not c.certified for c in fallbacks)
        _assert_certified_within_lambda(scr, choices, instances, oracle, lam)
        assert resilient.counters.resilience.optimize_fallbacks == len(fallbacks)


class TestNaNSelectivityVectors:
    def test_nan_svector_degrades_uncertified(self, toy_db, toy_template):
        class NaNSVector:
            def __init__(self, engine, fail_calls):
                self.inner = engine
                self.fail_calls = fail_calls
                self.calls = 0

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def begin_instance(self, index):
                self.inner.begin_instance(index)

            def selectivity_vector(self, instance):
                self.calls += 1
                if self.calls in self.fail_calls:
                    # Garbage engine output: NaNs fail SelectivityVector
                    # validation, surfacing as a fault to the retry layer.
                    return SelectivityVector.of(math.nan, math.nan)
                return self.inner.selectivity_vector(instance)

        flaky = NaNSVector(
            engine_with(CostModel(), toy_db, toy_template), fail_calls={6, 7}
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1, base_backoff=0.0, max_backoff=0.0)
        )
        resilient = ResilientEngineAPI(flaky, policy=policy, sleep=NO_SLEEP)
        scr = SCR(resilient, lam=2.0)
        choices = [
            scr.process(inst)
            for inst in instances_for_template(toy_template, 20, seed=101)
        ]
        degraded = [c for c in choices if not c.certified]
        assert len(degraded) == 2
        assert resilient.counters.resilience.selectivity_fallbacks == 2


class TestChaosWorkload:
    """The acceptance-bar scenario: recost failures up to 20%, optimizer
    timeouts up to 5%, occasional stale sVectors — the run completes,
    certified instances honour λ, and the counters/trace tell the story.
    """

    def test_full_chaos_run(self, toy_db, toy_template):
        from repro.engine.tracing import TraceEventKind, TraceLog

        lam = 2.0
        trace = TraceLog()
        optimizer = QueryOptimizer(
            toy_template, toy_db.stats, toy_db.estimator, CostModel()
        )
        engine = EngineAPI(toy_template, optimizer, toy_db.estimator, trace=trace)
        injector = FaultInjector(
            engine,
            # Silently-stale sVectors are out of model for the λ
            # assertion (no layer can detect them); they are exercised
            # by the reproducibility test below instead.
            FaultConfig.chaos(
                recost_failure_rate=0.2,
                optimize_timeout_rate=0.05,
                svector_corrupt_rate=0.0,
            ),
            seed=7,
        )
        resilient = ResilientEngineAPI(
            injector, policy=FAST_POLICY, sleep=NO_SLEEP
        )
        oracle = engine_with(CostModel(), toy_db, toy_template)
        scr = SCR(resilient, lam=lam)
        instances = instances_for_template(toy_template, 300, seed=103)
        choices = []
        for inst in instances:
            choices.append(scr.process(inst))
        assert scr.instances_processed == 300
        assert injector.injected_count() > 0
        _assert_certified_within_lambda(scr, choices, instances, oracle, lam)
        # Fault/retry accounting reached the EngineCounters...
        res = resilient.counters.resilience
        assert res.total_faults > 0
        assert res.retries > 0
        # ... and the trace log.
        kinds = {e.kind for e in trace.events}
        assert TraceEventKind.FAULT in kinds
        assert TraceEventKind.RETRY in kinds

    def test_chaos_run_is_reproducible(self, toy_db, toy_template):
        def run():
            optimizer = QueryOptimizer(
                toy_template, toy_db.stats, toy_db.estimator, CostModel()
            )
            engine = EngineAPI(toy_template, optimizer, toy_db.estimator)
            injector = FaultInjector(engine, FaultConfig.chaos(), seed=11)
            resilient = ResilientEngineAPI(
                injector, policy=FAST_POLICY, sleep=NO_SLEEP
            )
            scr = SCR(resilient, lam=2.0)
            checks = []
            for inst in instances_for_template(toy_template, 120, seed=107):
                try:
                    checks.append(scr.process(inst).check)
                except OptimizeUnavailableError:
                    checks.append("unavailable")
            return checks, scr.optimizer_calls

        assert run() == run()
