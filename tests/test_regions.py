"""Tests for λ-optimal region geometry (section 5.3, Figure 4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import QUADRATIC_BOUND, compute_gl
from repro.core.regions import RecostRegion, SelectivityRegion
from repro.query.instance import SelectivityVector

sel = st.floats(min_value=1e-3, max_value=1.0)


class TestSelectivityRegion:
    def test_anchor_inside(self):
        region = SelectivityRegion(SelectivityVector.of(0.1, 0.2), budget=2.0)
        assert region.contains(SelectivityVector.of(0.1, 0.2))

    def test_budget_below_one_rejected(self):
        with pytest.raises(ValueError):
            SelectivityRegion(SelectivityVector.of(0.1), budget=0.9)

    def test_contains_matches_gl(self):
        anchor = SelectivityVector.of(0.1, 0.3)
        region = SelectivityRegion(anchor, budget=2.0)
        inside = SelectivityVector.of(0.15, 0.3)    # GL = 1.5
        outside = SelectivityVector.of(0.25, 0.3)   # GL = 2.5
        assert region.contains(inside)
        assert not region.contains(outside)

    def test_region_is_scale_free(self):
        """GL depends on ratios only: scaling the anchor scales the region."""
        a = SelectivityRegion(SelectivityVector.of(0.1, 0.1), budget=2.0)
        b = SelectivityRegion(SelectivityVector.of(0.4, 0.4), budget=2.0)
        assert a.contains(SelectivityVector.of(0.15, 0.11))
        assert b.contains(SelectivityVector.of(0.6, 0.44))

    def test_area_formula(self):
        lam = 2.0
        region = SelectivityRegion(SelectivityVector.of(0.2, 0.3), budget=lam)
        expected = (lam - 1 / lam) * math.log(lam) * 0.2 * 0.3
        assert region.area_2d() == pytest.approx(expected)

    def test_area_increases_with_lambda(self):
        anchor = SelectivityVector.of(0.2, 0.3)
        areas = [
            SelectivityRegion(anchor, budget=lam).area_2d()
            for lam in (1.1, 1.5, 2.0, 3.0)
        ]
        assert all(a < b for a, b in zip(areas, areas[1:]))

    def test_area_requires_2d(self):
        with pytest.raises(ValueError):
            SelectivityRegion(SelectivityVector.of(0.5), budget=2.0).area_2d()

    def test_boundary_points_on_gl_contour(self):
        anchor = SelectivityVector.of(0.1, 0.2)
        lam = 2.0
        region = SelectivityRegion(anchor, budget=lam)
        for x, y in region.boundary_2d(points_per_arc=16):
            if not (0 < x <= 1 and 0 < y <= 1):
                continue
            g, l = compute_gl(anchor, SelectivityVector.of(x, y))
            assert g * l == pytest.approx(lam, rel=1e-6)

    def test_quadratic_bound_shrinks_region(self):
        anchor = SelectivityVector.of(0.1, 0.2)
        point = SelectivityVector.of(0.13, 0.2)  # GL = 1.3
        linear = SelectivityRegion(anchor, budget=1.5)
        quadratic = SelectivityRegion(anchor, budget=1.5, bound=QUADRATIC_BOUND)
        assert linear.contains(point)
        assert not quadratic.contains(point)  # 1.3^2 = 1.69 > 1.5


@settings(max_examples=100, deadline=None)
@given(s1=sel, s2=sel, t1=sel, t2=sel,
       lam=st.floats(min_value=1.01, max_value=5.0))
def test_property_region_membership_equals_gl_check(s1, s2, t1, t2, lam):
    anchor = SelectivityVector.of(s1, s2)
    point = SelectivityVector.of(t1, t2)
    region = SelectivityRegion(anchor, budget=lam)
    g, l = compute_gl(anchor, point)
    assert region.contains(point) == (g * l <= lam)


class TestRecostRegion:
    def test_contains_with_slow_growth(self):
        anchor = SelectivityVector.of(0.1, 0.1)
        region = RecostRegion(anchor, budget=2.0)
        point = SelectivityVector.of(0.5, 0.1)  # G = 5, L = 1
        # Selectivity check would fail (GL = 5), but if the actual cost
        # barely moved (R = 1.2) the cost check passes: R*L = 1.2 <= 2.
        assert region.contains(point, recost_ratio=1.2)
        assert not region.contains(point, recost_ratio=2.5)

    def test_recost_region_contains_selectivity_region_under_bcg(self):
        """If R < G (BCG holds), every selectivity-check success is also
        a cost-check success."""
        anchor = SelectivityVector.of(0.2, 0.2)
        sel_region = SelectivityRegion(anchor, budget=2.0)
        cost_region = RecostRegion(anchor, budget=2.0)
        point = SelectivityVector.of(0.3, 0.25)
        g, l = compute_gl(anchor, point)
        assert sel_region.contains(point)
        # Any R <= G keeps the point inside the recost region too.
        assert cost_region.contains(point, recost_ratio=g)
