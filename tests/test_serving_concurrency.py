"""Deterministic concurrency stress tests for the serving layer.

Seeded, barrier-started threads hammer one :class:`ConcurrentPQOManager`
and the suite asserts the guarantee survives every interleaving:

* no lost updates — every submitted instance is processed and counted;
* cache integrity — no duplicate plan ids or signatures, every instance
  entry points at a live plan, the plan budget ``k`` is never exceeded
  (not even transiently: ``max_plans_seen ≤ k``);
* the guarantee — every choice flagged ``certified=True`` has observed
  sub-optimality ≤ λ against an independent oracle;
* determinism — two runs with the same seed produce identical
  interleaving-invariant metrics, and a single-worker run reproduces
  the serial :class:`PQOManager` decision-for-decision.
"""

from __future__ import annotations

import random
import threading


from repro.core.manager import PQOManager
from repro.engine.database import Database
from repro.query.instance import QueryInstance
from repro.query.template import QueryTemplate, join, range_predicate
from repro.serving import ConcurrentPQOManager, simulated_latency_wrapper
from repro.workload.generator import generate_selectivity_vectors

from conftest import build_toy_schema

LAM = 2.0
SEED = 1234
NUM_THREADS = 8
INSTANCES_PER_TEMPLATE = 60


def serving_templates() -> list[QueryTemplate]:
    """Four toy-database join templates with distinct parameterizations."""
    specs = [
        ("orders", "o_date", "<="),
        ("orders", "o_amount", "<="),
        ("cust", "c_bal", "<="),
        ("cust", "c_bal", ">="),
    ]
    return [
        QueryTemplate(
            name=f"serve_t{i}",
            database="toy",
            tables=["orders", "cust"],
            joins=[join("orders", "o_cust", "cust", "c_id")],
            parameterized=[
                range_predicate(table, column, op),
                range_predicate("orders", "o_date", ">="),
            ],
        )
        for i, (table, column, op) in enumerate(specs)
    ]


def make_workload(
    templates: list[QueryTemplate], per_template: int, seed: int
) -> list[QueryInstance]:
    instances: list[QueryInstance] = []
    for i, template in enumerate(templates):
        for sv in generate_selectivity_vectors(2, per_template, seed=seed + i):
            instances.append(QueryInstance(template.name, sv=sv))
    random.Random(seed).shuffle(instances)
    return instances


def hammer(manager: ConcurrentPQOManager, instances, num_threads: int):
    """Barrier-started threads draining a shared workload; returns the
    choices aligned with ``instances`` order."""
    results = [None] * len(instances)
    errors: list[BaseException] = []
    barrier = threading.Barrier(num_threads)
    cursor = iter(range(len(instances)))
    cursor_lock = threading.Lock()

    def worker():
        barrier.wait()
        while True:
            with cursor_lock:
                i = next(cursor, None)
            if i is None:
                return
            try:
                results[i] = manager.process(instances[i])
            except BaseException as exc:  # surfaced to the main thread
                errors.append(exc)
                return

    threads = [threading.Thread(target=worker) for _ in range(num_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


def run_stress(seed: int, num_threads: int, plan_budget: int = 3):
    db = Database.create(build_toy_schema(), seed=11)
    templates = serving_templates()
    manager = ConcurrentPQOManager(database=db, max_workers=num_threads)
    for template in templates:
        manager.register(template, lam=LAM, plan_budget=plan_budget)
    instances = make_workload(templates, INSTANCES_PER_TEMPLATE, seed)
    choices = hammer(manager, instances, num_threads)
    manager.close()
    return db, templates, manager, instances, choices


def observed_violations(db, templates, instances, choices) -> int:
    """Certified instances whose true sub-optimality exceeds λ."""
    oracles = {t.name: db.engine(t) for t in templates}
    violations = 0
    for instance, choice in zip(instances, choices):
        if not choice.certified:
            continue
        oracle = oracles[instance.template_name]
        optimal = oracle.optimize(instance.sv).cost
        chosen = oracle.recost(choice.shrunken_memo, instance.sv)
        if chosen / optimal > LAM * (1 + 1e-6):
            violations += 1
    return violations


class TestStressInvariants:
    def test_no_lost_updates_and_cache_integrity(self):
        db, templates, manager, instances, choices = run_stress(
            SEED, NUM_THREADS
        )
        assert all(choice is not None for choice in choices)

        total = sum(
            manager.state(t.name).scr.instances_processed for t in templates
        )
        assert total == len(instances), "lost or double-counted instances"

        for template in templates:
            cache = manager.state(template.name).scr.cache
            plans = cache.plans()
            plan_ids = [p.plan_id for p in plans]
            signatures = [p.signature for p in plans]
            assert len(set(plan_ids)) == len(plan_ids)
            assert len(set(signatures)) == len(signatures)
            for entry in cache.instances():
                assert cache.has_plan(entry.plan_id), (
                    "instance entry points at a dropped plan"
                )

    def test_plan_budget_never_exceeded(self):
        _, templates, manager, _, _ = run_stress(SEED, NUM_THREADS, plan_budget=2)
        for template in templates:
            cache = manager.state(template.name).scr.cache
            assert cache.num_plans <= 2
            # max_plans_seen is updated inside the write-locked add, so a
            # transient overshoot would be recorded here.
            assert cache.max_plans_seen <= 2

    def test_certified_instances_respect_lambda(self):
        db, templates, _, instances, choices = run_stress(SEED, NUM_THREADS)
        assert all(c.certified for c in choices)
        assert observed_violations(db, templates, instances, choices) == 0

    def test_same_seed_same_invariant_metrics(self):
        runs = []
        for _ in range(2):
            db, templates, manager, instances, choices = run_stress(
                SEED, NUM_THREADS
            )
            runs.append({
                "per_template": {
                    t.name: manager.state(t.name).scr.instances_processed
                    for t in templates
                },
                "uncertified": sum(1 for c in choices if not c.certified),
                "violations": observed_violations(
                    db, templates, instances, choices
                ),
            })
        assert runs[0] == runs[1]
        assert runs[0]["violations"] == 0


class TestSerialEquivalence:
    def test_single_worker_matches_serial_manager(self):
        templates = serving_templates()

        db_serial = Database.create(build_toy_schema(), seed=11)
        serial = PQOManager(
            database=db_serial, global_plan_budget=12, rebalance_every=50
        )
        for t in templates:
            serial.register(t, lam=LAM)
        workload = make_workload(templates, 40, SEED)
        serial_choices = [serial.process(i) for i in workload]

        db_conc = Database.create(build_toy_schema(), seed=11)
        concurrent = ConcurrentPQOManager(
            database=db_conc,
            max_workers=1,
            global_plan_budget=12,
            rebalance_every=50,
        )
        for t in templates:
            concurrent.register(t, lam=LAM)
        concurrent_choices = [concurrent.process(i) for i in workload]
        concurrent.close()

        assert [c.check for c in serial_choices] == [
            c.check for c in concurrent_choices
        ]
        assert [c.plan_signature for c in serial_choices] == [
            c.plan_signature for c in concurrent_choices
        ]
        for t in templates:
            s, c = serial.state(t.name), concurrent.state(t.name)
            assert s.scr.optimizer_calls == c.scr.optimizer_calls
            assert s.scr.plans_cached == c.scr.plans_cached
            assert s.scr.cache.num_instances == c.scr.cache.num_instances


class TestSingleFlight:
    def test_identical_vectors_collapse_to_one_optimize(self):
        db = Database.create(build_toy_schema(), seed=11)
        template = serving_templates()[0]
        manager = ConcurrentPQOManager(
            database=db,
            max_workers=NUM_THREADS,
            engine_wrapper=simulated_latency_wrapper(
                optimize_seconds=0.05, recost_seconds=0.0,
                selectivity_seconds=0.0,
            ),
        )
        manager.register(template, lam=LAM)
        sv = generate_selectivity_vectors(2, 1, seed=3)[0]
        instances = [
            QueryInstance(template.name, sv=sv) for _ in range(NUM_THREADS)
        ]
        choices = hammer(manager, instances, NUM_THREADS)
        manager.close()

        inner = db.engine(template)
        assert inner.counters.optimize.calls == 1, (
            "concurrent identical misses must single-flight into one "
            "optimizer call"
        )
        assert len({c.plan_signature for c in choices}) == 1
        stats = manager.shard(template.name).stats
        assert stats.single_flight_collapsed >= 1


class TestBatchedAdmission:
    def test_submit_batch_dedupes_identical_vectors(self):
        db = Database.create(build_toy_schema(), seed=11)
        templates = serving_templates()[:2]
        manager = ConcurrentPQOManager(database=db, max_workers=4)
        for t in templates:
            manager.register(t, lam=LAM)
        base = make_workload(templates, 10, SEED)
        batch = base + base[:7]  # 7 duplicates of earlier instances
        choices = manager.process_many(batch)
        manager.close()

        assert len(choices) == len(batch)
        for i in range(7):
            assert choices[len(base) + i] is choices[i], (
                "duplicates must share the first occurrence's PlanChoice"
            )
        deduped = sum(
            manager.shard(t.name).stats.batch_deduped for t in templates
        )
        assert deduped == 7
        processed = sum(
            manager.state(t.name).scr.instances_processed for t in templates
        )
        assert processed == len(base)

    def test_submit_batch_without_dedupe_processes_all(self):
        db = Database.create(build_toy_schema(), seed=11)
        template = serving_templates()[0]
        manager = ConcurrentPQOManager(database=db, max_workers=4)
        manager.register(template, lam=LAM)
        sv = generate_selectivity_vectors(2, 1, seed=3)[0]
        batch = [QueryInstance(template.name, sv=sv) for _ in range(5)]
        choices = manager.process_many(batch, dedupe=False)
        manager.close()
        assert len(choices) == 5
        assert manager.state(template.name).scr.instances_processed == 5


class TestSnapshotSemantics:
    def test_snapshot_is_copy_on_write(self):
        from repro.core.scr import SCR

        db = Database.create(build_toy_schema(), seed=11)
        template = serving_templates()[0]
        scr = SCR(db.engine(template), lam=LAM)
        sv = generate_selectivity_vectors(2, 3, seed=7)

        snap0 = scr.cache.snapshot()
        assert snap0 is scr.cache.snapshot(), "unchanged cache: same object"
        scr.process(QueryInstance(template.name, sv=sv[0]))
        snap1 = scr.cache.snapshot()
        assert snap1 is not snap0
        assert snap1.epoch > snap0.epoch
        assert len(snap1.entries) == 1
        # The old snapshot still reflects the pre-mutation state.
        assert len(snap0.entries) == 0


class TestCommitValidation:
    """Optimistic-commit validation must re-read the retired flag under
    the lock: retiring an anchor (Appendix G) does not bump the cache
    epoch, so the epoch fast-path alone would certify a cost bound the
    violation detector just invalidated."""

    def _shard_with_anchor(self):
        from repro.workload.generator import generate_selectivity_vectors

        db = Database.create(build_toy_schema(), seed=11)
        template = serving_templates()[0]
        manager = ConcurrentPQOManager(database=db, max_workers=1)
        manager.register(template, lam=LAM)
        sv = generate_selectivity_vectors(2, 1, seed=3)[0]
        manager.process(QueryInstance(template.name, sv=sv))
        manager.close()
        shard = manager.shard(template.name)
        entry = next(shard.scr.cache.instances())
        return shard, entry

    def test_retired_anchor_rejected_on_epoch_fast_path(self):
        from repro.core.get_plan import CheckKind, GetPlanDecision

        shard, entry = self._shard_with_anchor()
        cache = shard.scr.cache
        snapshot = cache.snapshot()
        cost_hit = GetPlanDecision(
            plan_id=entry.plan_id, check=CheckKind.COST, anchor=entry,
            recost_calls=1, recost_ratio=1.0, g=1.0, l=1.0,
        )
        assert shard._commit_valid(cost_hit, snapshot)

        entry.retired = True
        # Retirement leaves the epoch untouched -- exactly the hole the
        # fast-path-only validation had.
        assert cache.epoch == snapshot.epoch
        assert not shard._commit_valid(cost_hit, snapshot)

    def test_retired_anchor_still_serves_selectivity_hits(self):
        from repro.core.get_plan import CheckKind, GetPlanDecision

        shard, entry = self._shard_with_anchor()
        snapshot = shard.scr.cache.snapshot()
        entry.retired = True
        sel_hit = GetPlanDecision(
            plan_id=entry.plan_id, check=CheckKind.SELECTIVITY, anchor=entry,
            g=1.0, l=1.0,
        )
        # Serial semantics keep retired anchors in the selectivity check.
        assert shard._commit_valid(sel_hit, snapshot)


class TestMissAccounting:
    def test_concurrent_hit_miss_counters_match_serial_semantics(self):
        _, templates, manager, _, _ = run_stress(SEED, NUM_THREADS)
        for template in templates:
            scr = manager.state(template.name).scr
            gp = scr.get_plan
            # Every served instance commits exactly one decision, and
            # every miss corresponds to one optimizer call (no faults
            # are injected here, so there are no fallbacks).
            assert (
                gp.selectivity_hits + gp.cost_hits + gp.misses
                == scr.instances_processed
            )
            assert gp.misses == scr.optimizer_calls
            assert gp.misses >= 1
            assert gp.total_recost_calls >= 0


class TestQuarantineWithoutGlobalBudget:
    def test_breaker_open_quarantines_on_rebalance_schedule(self):
        from repro.engine.resilience import (
            BreakerState,
            resilient_engine_factory,
        )
        from repro.workload.generator import generate_selectivity_vectors

        db = Database.create(build_toy_schema(), seed=11)
        template = serving_templates()[0]
        manager = ConcurrentPQOManager(
            database=db,
            max_workers=2,
            rebalance_every=5,
            engine_wrapper=resilient_engine_factory(sleep=lambda s: None),
        )
        manager.register(template, lam=LAM)
        assert manager.global_plan_budget is None

        manager.state(template.name).engine.recost_breaker.state = (
            BreakerState.OPEN
        )
        svs = generate_selectivity_vectors(2, 6, seed=5)
        for sv in svs:
            manager.process(QueryInstance(template.name, sv=sv))
        manager.close()
        # The quarantine sweep must run at rebalance points even with no
        # global plan budget configured.
        assert manager.quarantined_templates == [template.name]
