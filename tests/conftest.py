"""Shared fixtures: a small hand-built database and scaled-down catalogs.

Everything is session-scoped and deterministic so the suite stays fast.
"""

from __future__ import annotations

import os

import pytest

from repro.catalog.schema import Column, Schema, Table
from repro.engine.database import Database
from repro.query.template import QueryTemplate, join, range_predicate


def pytest_collection_modifyitems(config, items):
    """Keep multi-process cluster tests out of the tier-1 run.

    They spawn real worker processes and build catalog databases, so
    they run as their own CI job (``RUN_CLUSTER_TESTS=1``) instead of
    slowing every ``pytest`` invocation.
    """
    if os.environ.get("RUN_CLUSTER_TESTS") == "1":
        return
    skip = pytest.mark.skip(
        reason="cluster test: spawns processes; set RUN_CLUSTER_TESTS=1"
    )
    for item in items:
        if "cluster" in item.keywords:
            item.add_marker(skip)


def build_toy_schema() -> Schema:
    """Two-table FK schema with indexes on predicate and join columns."""
    schema = Schema("toy")
    schema.add_table(Table(
        "orders",
        [
            Column("o_id", domain_size=10**6),
            Column("o_date", domain_size=1000),
            Column("o_cust", domain_size=1000),
            Column("o_amount", domain_size=5000, skew=0.7),
        ],
        row_count=20_000,
        primary_key="o_id",
    ))
    schema.add_table(Table(
        "cust",
        [
            Column("c_id", domain_size=10**6),
            Column("c_bal", domain_size=1000, skew=0.5),
        ],
        row_count=2_000,
        primary_key="c_id",
    ))
    schema.add_foreign_key("orders", "o_cust", "cust", "c_id")
    schema.add_index("orders", "o_date")
    schema.add_index("orders", "o_cust")
    schema.add_index("cust", "c_id")
    schema.add_index("cust", "c_bal")
    return schema


@pytest.fixture(scope="session")
def toy_db() -> Database:
    return Database.create(build_toy_schema(), seed=11)


@pytest.fixture(scope="session")
def toy_template() -> QueryTemplate:
    return QueryTemplate(
        name="toy_join",
        database="toy",
        tables=["orders", "cust"],
        joins=[join("orders", "o_cust", "cust", "c_id")],
        parameterized=[
            range_predicate("orders", "o_date", "<="),
            range_predicate("cust", "c_bal", "<="),
        ],
    )


@pytest.fixture(scope="session")
def toy_engine(toy_db, toy_template):
    return toy_db.engine(toy_template)


@pytest.fixture(scope="session")
def toy_single_table_template() -> QueryTemplate:
    return QueryTemplate(
        name="toy_scan",
        database="toy",
        tables=["orders"],
        parameterized=[range_predicate("orders", "o_amount", "<=")],
    )


@pytest.fixture(scope="session")
def tpch_db():
    from repro.catalog.registry import get_database

    return get_database("tpch", scale=0.2, seed=5)


@pytest.fixture(scope="session")
def tpcds_db():
    from repro.catalog.registry import get_database

    return get_database("tpcds", scale=0.2, seed=5)
