"""Tests for the baseline online PQO techniques."""

import pytest

from repro.baselines import (
    Density,
    Ellipse,
    OptimizeAlways,
    OptimizeOnce,
    PCM,
    Ranges,
)
from repro.baselines.store import BaselinePlanStore
from repro.engine.api import EngineAPI
from repro.query.instance import QueryInstance, SelectivityVector
from repro.workload.generator import instances_for_template


def fresh_engine(db, template) -> EngineAPI:
    from repro.optimizer.optimizer import QueryOptimizer

    optimizer = QueryOptimizer(template, db.stats, db.estimator, db.cost_model)
    return EngineAPI(template, optimizer, db.estimator)


def inst(s1: float, s2: float) -> QueryInstance:
    return QueryInstance("toy_join", sv=SelectivityVector.of(s1, s2))


class TestTrivial:
    def test_optimize_always_calls_every_time(self, toy_db, toy_template):
        tech = OptimizeAlways(fresh_engine(toy_db, toy_template))
        for s in (0.1, 0.1, 0.1):
            choice = tech.process(inst(s, s))
            assert choice.used_optimizer
        assert tech.optimizer_calls == 3
        assert tech.plans_cached == 0

    def test_optimize_once_reuses_first_plan(self, toy_db, toy_template):
        tech = OptimizeOnce(fresh_engine(toy_db, toy_template))
        first = tech.process(inst(0.001, 0.001))
        second = tech.process(inst(0.9, 0.9))
        assert first.used_optimizer
        assert not second.used_optimizer
        assert second.plan_signature == first.plan_signature
        assert tech.optimizer_calls == 1
        assert tech.plans_cached == 1


class TestPCM:
    def test_no_reuse_before_dominating_pair(self, toy_db, toy_template):
        tech = PCM(fresh_engine(toy_db, toy_template), lam=2.0)
        # Two incomparable points: no rectangle can be built.
        assert tech.process(inst(0.1, 0.5)).used_optimizer
        assert tech.process(inst(0.5, 0.1)).used_optimizer
        assert tech.process(inst(0.3, 0.3)).used_optimizer

    def test_reuse_inside_rectangle(self, toy_db, toy_template):
        tech = PCM(fresh_engine(toy_db, toy_template), lam=5.0)
        tech.process(inst(0.2, 0.2))
        tech.process(inst(0.3, 0.3))  # dominates, if costs within lambda
        choice = tech.process(inst(0.25, 0.25))
        assert not choice.used_optimizer
        assert choice.check == "rectangle"

    def test_rectangle_requires_cost_within_lambda(self, toy_db, toy_template):
        tech = PCM(fresh_engine(toy_db, toy_template), lam=1.0 + 1e-6)
        tech.process(inst(0.01, 0.01))
        tech.process(inst(0.9, 0.9))  # dominates but cost >> lambda factor
        choice = tech.process(inst(0.5, 0.5))
        assert choice.used_optimizer

    def test_guarantee_under_monotonicity(self, toy_db, toy_template):
        """PCM's inference is lambda-sound when PCM assumption holds."""
        engine = fresh_engine(toy_db, toy_template)
        oracle = fresh_engine(toy_db, toy_template)
        lam = 2.0
        tech = PCM(engine, lam=lam)
        violations = 0
        instances = instances_for_template(toy_template, 150, seed=13)
        for q in instances:
            choice = tech.process(q)
            optimal = oracle.optimize(q.selectivities)
            so = oracle.recost(choice.shrunken_memo, q.selectivities) / optimal.cost
            if so > lam * 1.001:
                violations += 1
        assert violations <= len(instances) * 0.02

    def test_name(self, toy_db, toy_template):
        assert PCM(fresh_engine(toy_db, toy_template), lam=2.0).name == "PCM2"


class TestEllipse:
    def test_rejects_bad_delta(self, toy_db, toy_template):
        with pytest.raises(ValueError):
            Ellipse(fresh_engine(toy_db, toy_template), delta=1.5)

    def test_pair_needed_before_reuse(self, toy_db, toy_template):
        tech = Ellipse(fresh_engine(toy_db, toy_template), delta=0.9)
        first = tech.process(inst(0.2, 0.2))
        assert first.used_optimizer
        # Find a second instance with the same optimal plan to create a
        # focus pair (plan boundaries make specific offsets unreliable).
        partner = None
        for step in range(1, 6):
            s = 0.2 + 0.01 * step
            choice = tech.process(inst(s, s))
            if choice.plan_signature == first.plan_signature:
                partner = s
                break
        assert partner is not None, "no same-plan partner found nearby"
        # A point between the foci is inside the ellipse.
        mid = (0.2 + partner) / 2
        choice = tech.process(inst(mid, mid))
        assert not choice.used_optimizer
        assert choice.check == "ellipse"

    def test_smaller_delta_inflates_region(self, toy_db, toy_template):
        results = {}
        instances = instances_for_template(toy_template, 150, seed=17)
        for delta in (0.95, 0.5):
            tech = Ellipse(fresh_engine(toy_db, toy_template), delta=delta)
            for q in instances:
                tech.process(q)
            results[delta] = tech.optimizer_calls
        assert results[0.5] <= results[0.95]


class TestDensity:
    def test_parameter_validation(self, toy_db, toy_template):
        engine = fresh_engine(toy_db, toy_template)
        with pytest.raises(ValueError):
            Density(engine, radius=0.0)
        with pytest.raises(ValueError):
            Density(engine, confidence=0.0)
        with pytest.raises(ValueError):
            Density(engine, min_points=0)

    def test_reuse_after_dense_neighborhood(self, toy_db, toy_template):
        tech = Density(fresh_engine(toy_db, toy_template), radius=0.1,
                       confidence=0.5, min_points=2)
        tech.process(inst(0.20, 0.20))
        tech.process(inst(0.22, 0.22))
        choice = tech.process(inst(0.21, 0.21))
        assert not choice.used_optimizer
        assert choice.check == "density"

    def test_sparse_neighborhood_optimizes(self, toy_db, toy_template):
        tech = Density(fresh_engine(toy_db, toy_template), radius=0.05)
        tech.process(inst(0.1, 0.1))
        choice = tech.process(inst(0.9, 0.9))
        assert choice.used_optimizer


class TestRanges:
    def test_reuse_within_slack_of_mbr(self, toy_db, toy_template):
        tech = Ranges(fresh_engine(toy_db, toy_template), slack=0.01)
        tech.process(inst(0.2, 0.2))
        choice = tech.process(inst(0.205, 0.205))
        assert not choice.used_optimizer
        assert choice.check == "range"

    def test_outside_mbr_optimizes(self, toy_db, toy_template):
        tech = Ranges(fresh_engine(toy_db, toy_template), slack=0.01)
        tech.process(inst(0.2, 0.2))
        assert tech.process(inst(0.5, 0.5)).used_optimizer

    def test_mbr_grows_with_same_plan_instances(self, toy_db, toy_template):
        tech = Ranges(fresh_engine(toy_db, toy_template), slack=0.01)
        a = tech.process(inst(0.20, 0.20))
        b = tech.process(inst(0.30, 0.30))
        if a.plan_signature == b.plan_signature:
            # Any point between the two is now inside the MBR.
            choice = tech.process(inst(0.25, 0.25))
            assert not choice.used_optimizer

    def test_negative_slack_rejected(self, toy_db, toy_template):
        with pytest.raises(ValueError):
            Ranges(fresh_engine(toy_db, toy_template), slack=-0.1)


class TestBaselinePlanStore:
    def test_register_dedupes_by_signature(self, toy_engine):
        store = BaselinePlanStore()
        sv = SelectivityVector.of(0.1, 0.1)
        result = toy_engine.optimize(sv)
        p1 = store.register(sv, result)
        p2 = store.register(SelectivityVector.of(0.11, 0.1), result)
        assert p1.plan_id == p2.plan_id
        assert store.num_plans == 1
        assert len(p1.points) == 2

    def test_redundancy_rejection_with_recost(self, toy_engine):
        """H.6 variant: a near-equivalent new plan is folded into the
        cheapest stored plan instead of being stored."""
        store = BaselinePlanStore(lambda_r=5.0)
        sv1 = SelectivityVector.of(0.1, 0.1)
        res1 = toy_engine.optimize(sv1)
        store.register(sv1, res1, toy_engine.recost)
        # Find a nearby instance with a different optimal plan.
        for step in range(1, 20):
            sv2 = SelectivityVector.of(0.1 + step * 0.04, 0.1 + step * 0.04)
            res2 = toy_engine.optimize(sv2)
            if res2.plan.signature() != res1.plan.signature():
                store.register(sv2, res2, toy_engine.recost)
                break
        # With a generous lambda_r the second plan should be rejected.
        assert store.num_plans == 1
        assert store.plans_rejected_redundant == 1


class TestUnboundedSuboptimality:
    def test_heuristics_can_exceed_two(self, toy_db, toy_template):
        """Section 3's headline: selectivity-distance heuristics incur
        unbounded sub-optimality on adversarial-ish workloads."""
        oracle = fresh_engine(toy_db, toy_template)
        instances = instances_for_template(toy_template, 250, seed=23)
        worst = {}
        for name, factory in (
            ("ranges", lambda e: Ranges(e, slack=0.05)),
            ("ellipse", lambda e: Ellipse(e, delta=0.5)),
        ):
            tech = factory(fresh_engine(toy_db, toy_template))
            mso = 1.0
            for q in instances:
                choice = tech.process(q)
                optimal = oracle.optimize(q.selectivities)
                so = oracle.recost(
                    choice.shrunken_memo, q.selectivities) / optimal.cost
                mso = max(mso, so)
            worst[name] = mso
        assert max(worst.values()) > 2.0
