"""Deterministic supervisor tests: fake launcher, fake clock, no processes.

The supervisor is driven in single-threaded mode (``start(monitor=False)``)
with messages injected straight onto its response queue and liveness run
by explicit :meth:`tick` calls at fake-clock times — every edge case here
is exact, not timing-dependent: restart-backoff growth and cap, flap
quarantine, graceful drain during shutdown, and the double-death of a
partition's owner and its retry peer.
"""

from __future__ import annotations

import queue
from dataclasses import dataclass

import pytest

from repro.cluster import (
    ClusterSupervisor,
    SupervisorPolicy,
    WorkerLostError,
    WorkerState,
)
from repro.cluster.supervisor import DEATHS_TOTAL, RETRIES_TOTAL, WORKER_LOST_TOTAL
from repro.cluster.transport import Bye, Control, Heartbeat, Ready, Response
from repro.obs.clock import FakeClock


@dataclass(frozen=True)
class FakeTemplate:
    """The supervisor only needs ``.name``; no engine, no database."""

    name: str


class FakeProcess:
    def __init__(self) -> None:
        self.alive = True
        self.kills = 0
        self.terminations = 0

    def is_alive(self) -> bool:
        return self.alive

    def kill(self) -> None:
        self.kills += 1
        self.alive = False

    def terminate(self) -> None:
        self.terminations += 1
        self.alive = False

    def join(self, timeout=None) -> None:
        return None


class FakeLauncher:
    """In-process stand-in for ProcessLauncher: plain queues, no spawn."""

    def __init__(self) -> None:
        self.launched: list = []

    def make_response_queue(self):
        return queue.Queue()

    def launch(self, spec, response_q):
        request_q = queue.Queue()
        process = FakeProcess()
        self.launched.append((spec, request_q, process))
        return request_q, process


def make_cluster(num_workers=2, num_templates=12, **policy_kwargs):
    clock = FakeClock()
    supervisor = ClusterSupervisor(
        [FakeTemplate(f"t{i}") for i in range(num_templates)],
        num_workers=num_workers,
        snapshot_dir="unused-by-fake-launcher",
        policy=SupervisorPolicy(**policy_kwargs),
        launcher=FakeLauncher(),
        clock=clock.clock,
    )
    supervisor.start(monitor=False)
    return supervisor, clock


def mark_live(sup, *worker_ids):
    for wid in worker_ids:
        sup.response_q.put(Ready(
            worker_id=wid, incarnation=sup.workers[wid].incarnation
        ))
    sup.pump()


def respond(sup, request_id, template_name, worker="w0", incarnation=0,
            **overrides):
    fields = dict(
        request_id=request_id, worker_id=worker, incarnation=incarnation,
        template_name=template_name, ok=True, check="sel",
        plan_signature="p1", certified=True, certificate="exact",
        certified_bound=1.5,
    )
    fields.update(overrides)
    sup.response_q.put(Response(**fields))
    sup.pump()


def pending_id(sup):
    assert len(sup._pending) == 1
    return next(iter(sup._pending))


def template_owned_by(sup, worker_id):
    names = [n for n in sup.templates if sup.ring.owner(n) == worker_id]
    assert names, f"no template routed to {worker_id}; add more templates"
    return names[0]


class TestLiveness:
    def test_ready_marks_live_and_records_warm_stats(self):
        sup, _ = make_cluster()
        sup.response_q.put(Ready(
            worker_id="w0", incarnation=0,
            warm_templates=3, cold_templates=9, warm_instances=41,
        ))
        sup.pump()
        handle = sup.workers["w0"]
        assert handle.state is WorkerState.LIVE
        assert (handle.warm_templates, handle.warm_instances) == (3, 41)

    def test_stale_incarnation_messages_are_ignored(self):
        sup, clock = make_cluster()
        mark_live(sup, "w0")
        sup.workers["w0"].process.alive = False
        sup.tick()
        assert sup.workers["w0"].state is WorkerState.DEAD
        # A late Ready/Heartbeat from the dead incarnation must not
        # resurrect the slot the supervisor already wrote off.
        sup.response_q.put(Ready(worker_id="w0", incarnation=0))
        sup.response_q.put(Heartbeat(
            worker_id="w0", incarnation=0, seq=9,
            requests_served=99, optimizer_calls=9,
        ))
        sup.pump()
        assert sup.workers["w0"].state is WorkerState.DEAD
        assert sup.workers["w0"].requests_served != 99

    def test_heartbeat_timeout_declares_death_and_reaps(self):
        sup, clock = make_cluster(heartbeat_timeout=1.0)
        mark_live(sup, "w0", "w1")
        clock.advance(0.9)
        sup.tick()
        assert sup.workers["w0"].state is WorkerState.LIVE
        # w1 heartbeats in time; w0 stays silent past the deadline.
        sup.response_q.put(Heartbeat(
            worker_id="w1", incarnation=0, seq=1,
            requests_served=5, optimizer_calls=2,
        ))
        sup.pump()
        clock.advance(0.2)
        sup.tick()
        assert sup.workers["w0"].state is WorkerState.DEAD
        assert sup.workers["w1"].state is WorkerState.LIVE
        # Best-effort reap: a stalled-but-alive process gets killed.
        assert sup.workers["w0"].process.kills == 1
        assert sup.obs.registry.total(DEATHS_TOTAL) == 1

    def test_startup_timeout_declares_death(self):
        sup, clock = make_cluster(startup_timeout=2.0, heartbeat_timeout=60.0)
        clock.advance(2.1)
        sup.tick()
        assert all(
            h.state is WorkerState.DEAD for h in sup.workers.values()
        )


class TestRestartBackoff:
    def _kill_and_tick(self, sup):
        sup.workers["w0"].process.alive = False
        sup.tick()

    def test_backoff_doubles_then_caps(self):
        sup, clock = make_cluster(
            restart_backoff_base=1.0, restart_backoff_cap=4.0,
            flap_threshold=99, heartbeat_timeout=60.0, startup_timeout=60.0,
        )
        handle = sup.workers["w0"]
        expected = [1.0, 2.0, 4.0, 4.0, 4.0]  # min(1 * 2^k, 4)
        for backoff in expected:
            self._kill_and_tick(sup)
            assert handle.state is WorkerState.DEAD
            assert handle.next_restart_at == pytest.approx(
                clock.monotonic() + backoff
            )
            clock.advance(backoff - 0.01)
            sup.tick()
            assert handle.state is WorkerState.DEAD  # not due yet
            clock.advance(0.01)
            sup.tick()
            assert handle.state is WorkerState.STARTING

        assert handle.restarts == len(expected)
        assert handle.incarnation == len(expected)

    def test_respawn_overrides_apply_exactly_once(self):
        sup, clock = make_cluster(
            restart_backoff_base=0.0, flap_threshold=99,
            heartbeat_timeout=60.0, startup_timeout=60.0,
        )
        handle = sup.workers["w0"]
        handle.respawn_overrides["slow_start_seconds"] = 0.7
        self._kill_and_tick(sup)
        sup.tick()  # zero backoff: restart fires immediately
        assert handle.spec.slow_start_seconds == 0.7
        assert handle.respawn_overrides == {}
        self._kill_and_tick(sup)
        sup.tick()
        # Chaos one-shots never survive into the next incarnation.
        assert handle.spec.slow_start_seconds == 0.0


class TestFlapQuarantine:
    def test_flapping_worker_is_quarantined_and_bypassed(self):
        sup, clock = make_cluster(
            num_workers=2, restart_backoff_base=0.0, flap_threshold=3,
            flap_window=30.0, heartbeat_timeout=60.0, startup_timeout=60.0,
        )
        handle = sup.workers["w0"]
        for death in range(3):
            handle.process.alive = False
            sup.tick()  # declare dead
            sup.tick()  # zero-backoff restart (no-op once quarantined)
        assert handle.state is WorkerState.QUARANTINED
        assert handle.next_restart_at is None
        restarts_before = handle.restarts
        clock.advance(60.0)
        sup.tick()
        assert handle.state is WorkerState.QUARANTINED
        assert handle.restarts == restarts_before

        # Its partition keeps serving: requests fall through to the peer.
        name = template_owned_by(sup, "w0")
        fut = sup.submit(name, (0.5,))
        rid = pending_id(sup)
        assert sup._pending[rid].worker_id == "w1"
        respond(sup, rid, name, worker="w1")
        assert fut.result().ok

    def test_deaths_outside_the_window_do_not_quarantine(self):
        sup, clock = make_cluster(
            restart_backoff_base=0.0, flap_threshold=2, flap_window=5.0,
            heartbeat_timeout=60.0, startup_timeout=60.0,
        )
        handle = sup.workers["w0"]
        for _ in range(4):
            handle.process.alive = False
            sup.tick()
            assert handle.state is WorkerState.DEAD  # never quarantined
            sup.tick()
            clock.advance(10.0)  # next death lands outside the window
        assert handle.restarts == 4


class TestReroutingAndDoubleDeath:
    def test_owner_death_retries_in_flight_on_peer(self):
        sup, clock = make_cluster(num_workers=3, heartbeat_timeout=60.0)
        mark_live(sup, "w0", "w1", "w2")
        name = template_owned_by(sup, "w0")
        fut = sup.submit(name, (0.5, 0.5))
        rid = pending_id(sup)
        assert sup._pending[rid].worker_id == "w0"

        sup.workers["w0"].process.alive = False
        sup.tick()
        assert sup._pending[rid].worker_id != "w0"
        assert sup._pending[rid].request.attempt == 1
        assert sup.obs.registry.total(RETRIES_TOTAL) == 1

        respond(sup, rid, name, worker=sup._pending[rid].worker_id)
        assert fut.result().certified
        assert sup.cluster_report()["resolved"] == 1

    def test_double_death_of_owner_and_retry_peer(self):
        """The ISSUE's hardest drain case: the partition's worker dies,
        then the peer that inherited the in-flight request dies too —
        the request must land on the third worker, not hang."""
        sup, clock = make_cluster(num_workers=3, heartbeat_timeout=60.0)
        mark_live(sup, "w0", "w1", "w2")
        name = template_owned_by(sup, "w0")
        fut = sup.submit(name, (0.5, 0.5))
        rid = pending_id(sup)

        sup.workers["w0"].process.alive = False
        sup.tick()
        first_peer = sup._pending[rid].worker_id
        sup.workers[first_peer].process.alive = False
        sup.tick()
        survivor = sup._pending[rid].worker_id
        assert survivor not in ("w0", first_peer)
        assert sup._pending[rid].request.attempt == 2
        assert sup.obs.registry.total(RETRIES_TOTAL) == 2

        respond(sup, rid, name, worker=survivor)
        assert fut.result().ok
        report = sup.cluster_report()
        assert report["resolved"] == report["submitted"] == 1
        assert report["worker_lost"] == 0

    def test_total_outage_resolves_lost_not_hangs(self):
        sup, clock = make_cluster(
            num_workers=2, max_retries=2, heartbeat_timeout=60.0,
        )
        mark_live(sup, "w0", "w1")
        name = template_owned_by(sup, "w0")
        fut = sup.submit(name, (0.5,))
        for wid in ("w0", "w1"):
            sup.workers[wid].process.alive = False
            sup.tick()
        with pytest.raises(WorkerLostError):
            fut.result(timeout=0)
        # Exactly-one-outcome holds even for the lost request: shed.
        report = sup.cluster_report()
        assert report["outcomes"]["shed"] == 1
        assert report["resolved"] == report["submitted"] == 1
        assert sup.obs.registry.total(WORKER_LOST_TOTAL) == 1

    def test_late_duplicate_response_is_ignored(self):
        sup, clock = make_cluster(num_workers=3, heartbeat_timeout=60.0)
        mark_live(sup, "w0", "w1", "w2")
        name = template_owned_by(sup, "w0")
        fut = sup.submit(name, (0.5,))
        rid = pending_id(sup)
        sup.workers["w0"].process.alive = False
        sup.tick()
        peer = sup._pending[rid].worker_id
        # The dead worker's late response races the peer's: first wins,
        # the duplicate is dropped, and accounting stays exactly-one.
        respond(sup, rid, name, worker="w0")
        respond(sup, rid, name, worker=peer, certified=False,
                certificate="uncertified")
        assert fut.result().worker_id == "w0"
        report = sup.cluster_report()
        assert report["resolved"] == 1
        assert report["outcomes"]["certified"] == 1


class TestDrainDuringShutdown:
    def test_close_waits_for_inflight_then_stops_workers(self):
        sup, clock = make_cluster(num_workers=2, heartbeat_timeout=60.0)
        mark_live(sup, "w0", "w1")
        name = template_owned_by(sup, "w0")
        fut = sup.submit(name, (0.5,))
        rid = pending_id(sup)
        # The worker finishes the in-flight request and says goodbye
        # while the supervisor drains.
        respond_fields = dict(
            request_id=rid, worker_id="w0", incarnation=0,
            template_name=name, ok=True, certified=True,
            certificate="exact", certified_bound=1.2,
        )
        sup.response_q.put(Response(**respond_fields))
        sup.response_q.put(Bye(worker_id="w0", incarnation=0,
                               requests_served=1))
        sup.response_q.put(Bye(worker_id="w1", incarnation=0))
        sup.close()

        assert fut.result(timeout=0).certified  # drained, not dropped
        for wid in ("w0", "w1"):
            handle = sup.workers[wid]
            assert handle.state is WorkerState.DEAD
            assert handle.bye_received
            # The drain sent each routable worker a graceful stop.
            stops = [
                m for m in list(handle.request_q.queue)
                if isinstance(m, Control) and m.kind == "stop"
            ]
            assert len(stops) == 1
        report = sup.cluster_report()
        assert report["resolved"] == report["submitted"] == 1
        assert report["in_flight"] == 0

    def test_exhausted_drain_budget_sheds_leftovers(self):
        sup, clock = make_cluster(num_workers=1, heartbeat_timeout=60.0)
        mark_live(sup, "w0")
        fut = sup.submit(next(iter(sup.templates)), (0.5,))
        sup.close(timeout=0)  # budget exhausted immediately: no pump loop
        with pytest.raises(WorkerLostError):
            fut.result(timeout=0)
        handle = sup.workers["w0"]
        assert handle.state is WorkerState.DEAD
        assert handle.process.terminations == 1  # straggler terminated
        report = sup.cluster_report()
        assert report["outcomes"]["shed"] == 1
        assert report["resolved"] == report["submitted"] == 1

    def test_submit_after_close_fails_fast(self):
        sup, clock = make_cluster(num_workers=1, heartbeat_timeout=60.0)
        sup.response_q.put(Bye(worker_id="w0", incarnation=0))
        sup.close()
        fut = sup.submit(next(iter(sup.templates)), (0.5,))
        with pytest.raises(WorkerLostError):
            fut.result(timeout=0)
        assert sup.close() is None  # idempotent

    def test_double_death_during_drain_still_resolves(self):
        """Shutdown and crashes interleave: the drain target dies with
        a request in flight, its retry peer dies too, and close() must
        still resolve the future instead of waiting for ghosts."""
        sup, clock = make_cluster(
            num_workers=2, max_retries=2, heartbeat_timeout=60.0,
        )
        mark_live(sup, "w0", "w1")
        name = template_owned_by(sup, "w0")
        fut = sup.submit(name, (0.5,))
        sup.workers["w0"].process.alive = False
        sup.tick()  # re-routed to w1
        sup.workers["w1"].process.alive = False
        sup.close(timeout=0)
        with pytest.raises(WorkerLostError):
            fut.result(timeout=0)
        report = sup.cluster_report()
        assert report["resolved"] == report["submitted"] == 1
        assert report["in_flight"] == 0


class TestMergedObservability:
    def _heartbeat(self, sup, wid, incarnation, served):
        sup.response_q.put(Heartbeat(
            worker_id=wid, incarnation=incarnation, seq=1,
            requests_served=served, optimizer_calls=served,
            outcomes={"certified": served, "uncertified": 0, "shed": 0},
            registry={"repro_requests_total": {
                "kind": "counter", "help": "Requests.",
                "series": [{"labels": {}, "value": float(served)}],
            }},
            lambda_violations=0,
        ))
        sup.pump()

    def test_dead_incarnations_keep_contributing(self):
        sup, clock = make_cluster(
            restart_backoff_base=0.0, heartbeat_timeout=60.0,
            startup_timeout=60.0,
        )
        mark_live(sup, "w0", "w1")
        self._heartbeat(sup, "w0", incarnation=0, served=7)
        sup.workers["w0"].process.alive = False
        sup.tick()  # dead
        sup.tick()  # restarted as incarnation 1
        mark_live(sup, "w0")
        self._heartbeat(sup, "w0", incarnation=1, served=3)

        text = sup.prometheus()
        assert 'repro_requests_total{source="w0:0"} 7' in text
        assert 'repro_requests_total{source="w0:1"} 3' in text
        # Supervisor families keep their own labels under source=.
        assert 'source="supervisor"' in text
        assert 'repro_cluster_restarts_total{source="supervisor",worker="w0"} 1' in text

    def test_worker_lambda_violations_aggregate_across_incarnations(self):
        sup, clock = make_cluster(heartbeat_timeout=60.0)
        mark_live(sup, "w0", "w1")
        sup.response_q.put(Heartbeat(
            worker_id="w0", incarnation=0, seq=1, requests_served=1,
            optimizer_calls=1, lambda_violations=2,
        ))
        sup.response_q.put(Heartbeat(
            worker_id="w1", incarnation=0, seq=1, requests_served=1,
            optimizer_calls=1, lambda_violations=1,
        ))
        sup.pump()
        assert sup.worker_lambda_violations() == 3
        assert sup.cluster_report()["worker_lambda_violations"] == 3

    def test_supervisor_audit_flags_bound_violations(self):
        sup, clock = make_cluster(num_workers=1, heartbeat_timeout=60.0)
        mark_live(sup, "w0")
        name = next(iter(sup.templates))
        fut = sup.submit(name, (0.5,))
        rid = pending_id(sup)
        # A certified response whose bound exceeds λ=2 must be caught by
        # the supervisor-side audit even if the worker's wasn't.
        respond(sup, rid, name, certified_bound=2.5)
        assert fut.result().certified
        assert sup.cluster_report()["supervisor_lambda_violations"] == 1


class TestExactlyOneOutcome:
    def test_identity_holds_across_mixed_fates(self):
        sup, clock = make_cluster(
            num_workers=3, max_retries=1, heartbeat_timeout=60.0,
        )
        mark_live(sup, "w0", "w1", "w2")
        futures = {}
        for name in list(sup.templates)[:9]:
            futures[name] = sup.submit(name, (0.5,))
        # Fate 1: some resolve normally (mix of certified/uncertified/shed).
        styles = [
            dict(),
            dict(certified=False, certificate="uncertified", check="cost"),
            dict(ok=False, certified=False, certificate="uncertified",
                 error_kind="shed", error_reason="queue_full"),
        ]
        for i, (rid, pending) in enumerate(list(sup._pending.items())[:6]):
            respond(sup, rid, pending.request.template_name,
                    worker=pending.worker_id, **styles[i % 3])
        # Fate 2: everything else rides through a double death.
        sup.workers["w0"].process.alive = False
        sup.tick()
        sup.workers["w1"].process.alive = False
        sup.tick()
        for rid, pending in list(sup._pending.items()):
            respond(sup, rid, pending.request.template_name,
                    worker=pending.worker_id)
        report = sup.cluster_report()
        assert report["submitted"] == 9
        assert report["resolved"] == 9
        assert sum(report["outcomes"].values()) == 9
        assert report["in_flight"] == 0
        for fut in futures.values():
            assert fut.done()
