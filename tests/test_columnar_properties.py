"""Property tests for the columnar instance store and its kernels.

Three invariant families, all driven by Hypothesis:

* **kernel parity** — the vectorized G·L (and corner G·L) of every
  (point, anchor) pair is bit-identical to the scalar reference, so the
  vectorized row minimum equals the scalar per-instance minimum;
* **view consistency** — after an arbitrary sequence of cache
  operations (add plan / add instance / drop plan / retire), the
  columnar view's arrays always mirror the snapshot's entry tuple
  field for field, and copy-on-write hands out the same view object
  between mutations;
* **batch ≡ sequential** — ``probe_batch`` returns exactly the
  decisions of a sequential ``probe`` loop over the same snapshot.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import adversarial_corner, compute_gl
from repro.core.columnar import corner_gl_matrix, gl_matrix
from repro.core.get_plan import GetPlan
from repro.core.plan_cache import CachedPlan, InstanceEntry, PlanCache
from repro.query.instance import (
    SelectivityVector,
    UncertainSelectivityVector,
)

selectivities = st.floats(
    min_value=1e-6, max_value=1.0,
    allow_nan=False, allow_infinity=False,
)


def sv_lists(dims: int):
    return st.lists(selectivities, min_size=dims, max_size=dims)


class _StubMemo:
    node_count = 1


def _cache_with(svs: list[list[float]]) -> PlanCache:
    cache = PlanCache()
    plan = CachedPlan(
        plan_id=0, signature="p0", plan=None, shrunken_memo=_StubMemo()
    )
    cache._plans[0] = plan
    cache._by_signature["p0"] = 0
    cache._next_plan_id = 1
    cache._mutated()
    for i, values in enumerate(svs):
        cache.add_instance(
            InstanceEntry(
                sv=SelectivityVector.from_sequence(values),
                plan_id=0,
                optimal_cost=100.0 + i,
                suboptimality=1.0 + (i % 5) / 10.0,
            )
        )
    return cache


# -- kernel parity ------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    data=st.data(),
    dims=st.integers(min_value=1, max_value=8),
)
def test_gl_matrix_is_bit_identical_to_scalar(data, dims):
    anchors = data.draw(st.lists(sv_lists(dims), min_size=1, max_size=12))
    point_vals = data.draw(sv_lists(dims))
    point = SelectivityVector.from_sequence(point_vals)
    sv_mat = np.array(anchors, dtype=np.float64)
    g_m, l_m = gl_matrix(sv_mat, np.array([point_vals], dtype=np.float64))
    for row, anchor_vals in enumerate(anchors):
        anchor = SelectivityVector.from_sequence(anchor_vals)
        g, l = compute_gl(anchor, point)
        assert g_m[0, row] == g
        assert l_m[0, row] == l


@settings(max_examples=200, deadline=None)
@given(
    data=st.data(),
    dims=st.integers(min_value=1, max_value=6),
)
def test_corner_gl_matrix_matches_adversarial_corner(data, dims):
    anchors = data.draw(st.lists(sv_lists(dims), min_size=1, max_size=10))
    point_vals = data.draw(sv_lists(dims))
    widen = data.draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.2, max_value=1.0, allow_nan=False),
                st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
            ),
            min_size=dims, max_size=dims,
        )
    )
    lo_vals = [max(1e-6, p * w[0]) for p, w in zip(point_vals, widen)]
    hi_vals = [min(1.0, max(p, p * w[1])) for p, w in zip(point_vals, widen)]
    lo_vals = [min(lo, p) for lo, p in zip(lo_vals, point_vals)]
    box = UncertainSelectivityVector(
        point=SelectivityVector.from_sequence(point_vals),
        lo=SelectivityVector.from_sequence(lo_vals),
        hi=SelectivityVector.from_sequence(hi_vals),
    )
    sv_mat = np.array(anchors, dtype=np.float64)
    gc_m, lc_m = corner_gl_matrix(
        sv_mat,
        np.array([lo_vals], dtype=np.float64),
        np.array([hi_vals], dtype=np.float64),
    )
    for row, anchor_vals in enumerate(anchors):
        anchor = SelectivityVector.from_sequence(anchor_vals)
        corner = adversarial_corner(anchor, box)
        gc, lc = compute_gl(anchor, corner)
        assert gc_m[0, row] == gc
        assert lc_m[0, row] == lc


@settings(max_examples=150, deadline=None)
@given(data=st.data(), dims=st.integers(min_value=1, max_value=6))
def test_vectorized_row_min_equals_scalar_min(data, dims):
    anchors = data.draw(st.lists(sv_lists(dims), min_size=1, max_size=15))
    point_vals = data.draw(sv_lists(dims))
    point = SelectivityVector.from_sequence(point_vals)
    sv_mat = np.array(anchors, dtype=np.float64)
    g_m, l_m = gl_matrix(sv_mat, np.array([point_vals], dtype=np.float64))
    vec_min = float((g_m[0] * l_m[0]).min())
    scalar_products = []
    for anchor_vals in anchors:
        g, l = compute_gl(SelectivityVector.from_sequence(anchor_vals), point)
        scalar_products.append(g * l)
    assert vec_min == min(scalar_products)


# -- view consistency over arbitrary op sequences -----------------------------


cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add_plan"), st.integers(0, 1_000_000)),
        st.tuples(st.just("add_instance"), st.integers(0, 1_000_000)),
        st.tuples(st.just("drop_plan"), st.integers(0, 30)),
        st.tuples(st.just("retire"), st.integers(0, 200)),
        st.tuples(st.just("probe_view"), st.just(0)),
    ),
    min_size=1, max_size=40,
)


def _assert_view_consistent(cache: PlanCache) -> None:
    snap = cache.snapshot()
    view = cache.columnar()
    assert view.epoch == snap.epoch == cache.epoch
    assert view.entries is snap.entries
    assert len(view) == len(snap.entries)
    for i, entry in enumerate(snap.entries):
        assert tuple(view.sv[i]) == entry.sv.values
        assert view.sub[i] == entry.suboptimality
        assert view.cost[i] == entry.optimal_cost
        assert int(view.plan_ids[i]) == entry.plan_id
        assert view.area[i] == entry.sv_product


@settings(max_examples=100, deadline=None)
@given(ops=cache_ops, seed=st.integers(0, 2**16))
def test_columnar_view_tracks_cache_through_op_sequences(ops, seed):
    import random

    rng = random.Random(seed)
    cache = PlanCache()
    next_sig = [0]

    def ensure_plan() -> int:
        if not cache._plans:
            plan = CachedPlan(
                plan_id=cache._next_plan_id,
                signature=f"s{next_sig[0]}",
                plan=None,
                shrunken_memo=_StubMemo(),
            )
            next_sig[0] += 1
            cache._plans[plan.plan_id] = plan
            cache._by_signature[plan.signature] = plan.plan_id
            cache._next_plan_id += 1
            cache._mutated()
        return rng.choice(list(cache._plans))

    for op, arg in ops:
        if op == "add_plan":
            plan = CachedPlan(
                plan_id=cache._next_plan_id,
                signature=f"s{next_sig[0]}",
                plan=None,
                shrunken_memo=_StubMemo(),
            )
            next_sig[0] += 1
            cache._plans[plan.plan_id] = plan
            cache._by_signature[plan.signature] = plan.plan_id
            cache._next_plan_id += 1
            cache._mutated()
        elif op == "add_instance":
            plan_id = ensure_plan()
            sv = SelectivityVector.from_sequence(
                [10 ** rng.uniform(-4, 0) for _ in range(3)]
            )
            cache.add_instance(
                InstanceEntry(
                    sv=sv, plan_id=plan_id,
                    optimal_cost=float(arg % 997 + 1),
                    suboptimality=1.0 + (arg % 7) / 10.0,
                )
            )
        elif op == "drop_plan":
            if cache._plans:
                victim = sorted(cache._plans)[arg % len(cache._plans)]
                cache.drop_plan(victim)
        elif op == "retire":
            entries = list(cache.instances())
            if entries:
                entries[arg % len(entries)].retired = True
        else:  # probe_view: exercise COW identity between mutations
            before = cache.columnar()
            assert cache.columnar() is before
        _assert_view_consistent(cache)
    _assert_view_consistent(cache)


def test_columnar_view_identity_is_stable_between_mutations():
    cache = _cache_with([[0.1, 0.2], [0.3, 0.4]])
    view = cache.columnar()
    assert cache.columnar() is view
    # Retiring flips a flag without an epoch bump: view object unchanged
    # (the flag is read live off the entries, never from the arrays).
    next(iter(cache.instances())).retired = True
    assert cache.columnar() is view
    # A structural mutation invalidates it.
    cache.add_instance(
        InstanceEntry(
            sv=SelectivityVector.of(0.5, 0.5), plan_id=0,
            optimal_cost=1.0, suboptimality=1.0,
        )
    )
    assert cache.columnar() is not view
    _ = cache.columnar()


def test_empty_cache_columnar_view():
    cache = PlanCache()
    view = cache.columnar()
    assert len(view) == 0
    assert view.sv.shape[0] == 0


# -- probe_batch ≡ sequential probe loop --------------------------------------


def _recost(memo, point: SelectivityVector) -> float:
    return 75.0 + hash(point.values) % 500


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    dims=st.integers(min_value=1, max_value=5),
)
def test_probe_batch_equals_sequential_probes(data, dims):
    anchors = data.draw(st.lists(sv_lists(dims), min_size=0, max_size=20))
    points = data.draw(st.lists(sv_lists(dims), min_size=0, max_size=30))
    cache = _cache_with(anchors)
    batch_gp = GetPlan(cache=cache, lam=1.7, check_impl="vectorized")
    seq_gp = GetPlan(cache=cache, lam=1.7, check_impl="vectorized")
    svs = [SelectivityVector.from_sequence(p) for p in points]
    batch = batch_gp.probe_batch(svs, _recost)
    sequential = [seq_gp.probe(sv, _recost) for sv in svs]
    assert len(batch) == len(sequential)
    for db, ds in zip(batch, sequential):
        assert db.check == ds.check
        assert db.plan_id == ds.plan_id
        assert db.anchor is ds.anchor
        assert db.recost_calls == ds.recost_calls
        assert db.g == ds.g and db.l == ds.l
        assert db.bound_value == ds.bound_value
    assert batch_gp.entries_scanned == seq_gp.entries_scanned


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_probe_batch_equals_sequential_probes_robust(data):
    dims = 3
    anchors = data.draw(st.lists(sv_lists(dims), min_size=1, max_size=12))
    points = data.draw(st.lists(sv_lists(dims), min_size=1, max_size=15))
    cache = _cache_with(anchors)
    batch_gp = GetPlan(
        cache=cache, lam=1.7, check_mode="robust", check_impl="vectorized"
    )
    seq_gp = GetPlan(
        cache=cache, lam=1.7, check_mode="robust", check_impl="vectorized"
    )
    svs = []
    for p in points:
        lo = [max(1e-6, v * 0.5) for v in p]
        hi = [min(1.0, v * 1.5) for v in p]
        svs.append(
            UncertainSelectivityVector(
                point=SelectivityVector.from_sequence(p),
                lo=SelectivityVector.from_sequence(lo),
                hi=SelectivityVector.from_sequence(hi),
            )
        )
    batch = batch_gp.probe_batch(svs, _recost)
    sequential = [seq_gp.probe(sv, _recost) for sv in svs]
    for db, ds in zip(batch, sequential):
        assert db.check == ds.check
        assert db.plan_id == ds.plan_id
        assert db.anchor is ds.anchor
        assert db.bound_value == ds.bound_value
        assert db.certificate == ds.certificate
