"""Tests for repro.catalog.schema."""

import pytest

from repro.catalog.schema import (
    Column,
    ColumnType,
    ForeignKey,
    Index,
    Schema,
    Table,
    make_columns,
)


class TestColumn:
    def test_defaults(self):
        col = Column("x")
        assert col.ctype is ColumnType.INT
        assert col.domain_size == 1000
        assert col.skew == 0.0

    def test_rejects_nonpositive_domain(self):
        with pytest.raises(ValueError, match="domain_size"):
            Column("x", domain_size=0)

    def test_rejects_negative_skew(self):
        with pytest.raises(ValueError, match="skew"):
            Column("x", skew=-0.1)


class TestTable:
    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError, match="row_count"):
            Table("t", [Column("a")], row_count=0)

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table("t", [Column("a"), Column("a")], row_count=1)

    def test_rejects_unknown_primary_key(self):
        with pytest.raises(ValueError, match="primary key"):
            Table("t", [Column("a")], row_count=1, primary_key="b")

    def test_column_lookup(self):
        table = Table("t", [Column("a"), Column("b")], row_count=5)
        assert table.column("b").name == "b"
        with pytest.raises(KeyError):
            table.column("zz")

    def test_column_names(self):
        table = Table("t", [Column("a"), Column("b")], row_count=5)
        assert table.column_names == ["a", "b"]


class TestSchema:
    def _schema(self) -> Schema:
        schema = Schema("s")
        schema.add_table(Table("parent", [Column("pk")], row_count=10,
                               primary_key="pk"))
        schema.add_table(Table("child", [Column("fk"), Column("v")], row_count=20))
        return schema

    def test_duplicate_table_rejected(self):
        schema = self._schema()
        with pytest.raises(ValueError, match="duplicate table"):
            schema.add_table(Table("parent", [Column("pk")], row_count=1))

    def test_table_lookup_error_names_schema(self):
        schema = self._schema()
        with pytest.raises(KeyError, match="no table"):
            schema.table("missing")

    def test_add_index_checks_column(self):
        schema = self._schema()
        with pytest.raises(KeyError):
            schema.add_index("child", "nope")
        idx = schema.add_index("child", "fk")
        assert idx == Index("child", "fk")
        assert schema.has_index("child", "fk")
        assert not schema.has_index("child", "v")

    def test_add_index_idempotent(self):
        schema = self._schema()
        schema.add_index("child", "fk")
        schema.add_index("child", "fk")
        assert len(schema.indexes) == 1

    def test_add_foreign_key_checks_columns(self):
        schema = self._schema()
        with pytest.raises(KeyError):
            schema.add_foreign_key("child", "nope", "parent", "pk")
        fk = schema.add_foreign_key("child", "fk", "parent", "pk")
        assert fk == ForeignKey("child", "fk", "parent", "pk")

    def test_foreign_key_between_either_direction(self):
        schema = self._schema()
        schema.add_foreign_key("child", "fk", "parent", "pk")
        assert schema.foreign_key_between("parent", "child") is not None
        assert schema.foreign_key_between("child", "parent") is not None
        assert schema.foreign_key_between("child", "child") is None

    def test_validate_catches_dangling_index(self):
        schema = self._schema()
        schema.indexes.append(Index("child", "ghost"))
        with pytest.raises(KeyError):
            schema.validate()

    def test_index_name(self):
        assert Index("t", "c").name == "idx_t_c"


def test_make_columns():
    cols = make_columns([("a", 10, 0.5), ("b", 20, 0.0)])
    assert [c.name for c in cols] == ["a", "b"]
    assert cols[0].skew == 0.5
    assert cols[1].domain_size == 20
