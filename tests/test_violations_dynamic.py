"""Tests for the Appendix G violation detector and Appendix D dynamic λ."""

import pytest

from repro.core.dynamic_lambda import DynamicLambda
from repro.core.plan_cache import InstanceEntry
from repro.core.violations import ViolationDetector
from repro.query.instance import SelectivityVector


def entry(s: float = 1.0) -> InstanceEntry:
    return InstanceEntry(
        sv=SelectivityVector.of(0.1, 0.1),
        plan_id=0,
        optimal_cost=100.0,
        suboptimality=s,
    )


class TestViolationDetector:
    def test_within_bounds_no_violation(self):
        det = ViolationDetector()
        # G = 2, L = 1: plan growth 1.5 is inside (1/1, 2).
        report = det.check(entry(), g=2.0, l=1.0, recost_ratio=1.5)
        assert not report.any
        assert det.violations_detected == 0

    def test_bcg_upper_violation_detected_and_retires(self):
        det = ViolationDetector()
        e = entry()
        # G = 2 but the cost tripled: BCG upper bound broken.
        report = det.check(e, g=2.0, l=1.0, recost_ratio=3.0)
        assert report.bcg_violated
        assert e.retired
        assert det.anchors_retired == 1

    def test_bcg_lower_violation_detected(self):
        det = ViolationDetector()
        # L = 2 (all selectivities halved) but cost fell to a tenth.
        report = det.check(entry(), g=1.0, l=2.0, recost_ratio=0.1)
        assert report.bcg_violated

    def test_pcm_violation_on_dominating_growth(self):
        det = ViolationDetector()
        # Selectivities only grew (G > 1, L = 1) yet cost decreased.
        report = det.check(entry(), g=1.5, l=1.0, recost_ratio=0.8)
        assert report.pcm_violated

    def test_pcm_violation_on_dominated_shrink(self):
        det = ViolationDetector()
        # Selectivities only shrank yet cost increased.
        report = det.check(entry(), g=1.0, l=1.5, recost_ratio=1.3)
        assert report.pcm_violated

    def test_tolerance_absorbs_noise(self):
        det = ViolationDetector(tolerance=1.05)
        # 1% overshoot of the bound is ignored.
        report = det.check(entry(), g=2.0, l=1.0, recost_ratio=2.02)
        assert not report.any

    def test_suboptimal_anchor_normalized(self):
        det = ViolationDetector()
        # S = 2: recost_ratio 3 means plan growth 1.5, within G = 2.
        report = det.check(entry(s=2.0), g=2.0, l=1.0, recost_ratio=3.0)
        assert not report.any

    def test_retire_counted_once(self):
        det = ViolationDetector()
        e = entry()
        det.check(e, g=2.0, l=1.0, recost_ratio=5.0)
        det.check(e, g=2.0, l=1.0, recost_ratio=5.0)
        assert det.violations_detected == 2
        assert det.anchors_retired == 1


class TestDynamicLambda:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicLambda(0.9, 2.0, 1.0)
        with pytest.raises(ValueError):
            DynamicLambda(2.0, 1.5, 1.0)
        with pytest.raises(ValueError):
            DynamicLambda(1.1, 2.0, 0.0)

    def test_cheap_instances_get_large_lambda(self):
        schedule = DynamicLambda(1.1, 10.0, cost_scale=1000.0)
        assert schedule(0.0) == pytest.approx(10.0)

    def test_expensive_instances_get_small_lambda(self):
        schedule = DynamicLambda(1.1, 10.0, cost_scale=1000.0)
        assert schedule(1e9) == pytest.approx(1.1)

    def test_monotone_decreasing_in_cost(self):
        schedule = DynamicLambda(1.1, 10.0, cost_scale=500.0)
        values = [schedule(c) for c in (0, 100, 500, 2000, 10_000)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_range_respected(self):
        schedule = DynamicLambda(1.2, 4.0, cost_scale=50.0)
        for cost in (0, 1, 10, 1e3, 1e7):
            assert 1.2 <= schedule(cost) <= 4.0

    def test_scr_integration_saves_calls(self, toy_db, toy_template):
        """Dynamic lambda should save optimizer calls vs static lambda_min
        (Appendix D's headline effect)."""
        from repro.core.scr import SCR
        from repro.engine.api import EngineAPI
        from repro.optimizer.optimizer import QueryOptimizer
        from repro.workload.generator import instances_for_template

        instances = instances_for_template(toy_template, 200, seed=8)

        def run(lambda_for, lam):
            optimizer = QueryOptimizer(
                toy_template, toy_db.stats, toy_db.estimator, toy_db.cost_model
            )
            engine = EngineAPI(toy_template, optimizer, toy_db.estimator)
            scr = SCR(engine, lam=lam, lambda_for=lambda_for)
            for inst in instances:
                scr.process(inst)
            return scr.optimizer_calls, scr.max_plans_cached

        static_calls, static_plans = run(None, 1.1)
        schedule = DynamicLambda(1.1, 10.0, cost_scale=5_000.0)
        dyn_calls, dyn_plans = run(schedule, 10.0)
        assert dyn_calls <= static_calls
        assert dyn_plans <= static_plans
