"""Cross-module integration tests on realistic templates.

These run the full stack — catalog, statistics, optimizer, SCR,
baselines, harness — over the benchmark databases, verifying the
paper's qualitative claims end-to-end at small scale.
"""

import pytest

from repro.baselines import PCM, Ellipse, OptimizeOnce, Ranges
from repro.core.scr import SCR
from repro.harness.runner import SequenceSpec, WorkloadRunner
from repro.workload.orderings import Ordering
from repro.workload.templates import (
    rd2_templates,
    seed_templates,
    tpcds_templates,
    tpch_templates,
)


@pytest.fixture(scope="module")
def runner() -> WorkloadRunner:
    return WorkloadRunner(db_scale=0.25)


def run(runner, template, factory, m=120, ordering=Ordering.RANDOM, lam=None):
    spec = SequenceSpec(template=template, m=m, ordering=ordering, seed=1)
    return runner.run(spec, factory, lam=lam)


class TestScrGuaranteeAcrossDatabases:
    @pytest.mark.parametrize("template", [
        tpch_templates()[0],
        tpcds_templates()[1],
    ], ids=lambda t: t.name)
    def test_scr2_bounded_suboptimality(self, runner, template):
        result = run(runner, template, lambda e: SCR(e, lam=2.0), lam=2.0)
        # Bound holds modulo rare BCG violations (<= 2% of instances).
        assert result.violations(2.0) <= result.m * 0.02
        assert result.total_cost_ratio < 2.0

    def test_scr_on_high_dimensional_template(self, runner):
        template = next(t for t in rd2_templates() if t.dimensions == 5)
        result = run(runner, template, lambda e: SCR(e, lam=2.0), m=150, lam=2.0)
        assert result.violations(2.0) <= result.m * 0.02
        assert result.num_plans < result.num_opt + 1


class TestHeadlineComparisons:
    """Section 7's qualitative orderings at reduced scale."""

    @pytest.fixture(scope="class")
    def results(self, runner):
        template = tpch_templates()[0]
        out = {}
        for name, factory in (
            ("SCR2", lambda e: SCR(e, lam=2.0)),
            ("PCM2", lambda e: PCM(e, lam=2.0)),
            ("Ellipse", lambda e: Ellipse(e, delta=0.9)),
            ("Ranges", lambda e: Ranges(e, slack=0.01)),
            ("OptOnce", OptimizeOnce),
        ):
            out[name] = run(runner, template, factory, m=250)
        return out

    def test_scr_beats_pcm_on_optimizer_calls(self, results):
        assert results["SCR2"].num_opt < results["PCM2"].num_opt

    def test_scr_mso_bounded_heuristics_not(self, results):
        heuristic_worst = max(
            results["Ellipse"].mso, results["Ranges"].mso, results["OptOnce"].mso
        )
        assert results["SCR2"].mso <= 2.0 * 1.02
        assert heuristic_worst > 2.0

    def test_scr_stores_fewest_plans_among_multiplan(self, results):
        for other in ("PCM2", "Ellipse", "Ranges"):
            assert results["SCR2"].num_plans <= results[other].num_plans

    def test_pcm_plan_quality_excellent(self, results):
        assert results["PCM2"].total_cost_ratio < 1.2


class TestOrderingRobustness:
    def test_scr_stable_across_orderings(self, runner):
        """H.5: SCR's overheads are similar across arrival orders."""
        template = tpch_templates()[0]
        rates = []
        for ordering in Ordering:
            result = run(runner, template, lambda e: SCR(e, lam=2.0),
                         m=150, ordering=ordering)
            rates.append(result.num_opt_percent)
        assert max(rates) - min(rates) < 40.0

    def test_decreasing_cost_hurts_pcm(self, runner):
        """Section 7.3: reverse-cost order starves PCM of rectangles."""
        template = tpch_templates()[0]
        random_r = run(runner, template, lambda e: PCM(e, lam=2.0),
                       m=150, ordering=Ordering.RANDOM)
        reverse_r = run(runner, template, lambda e: PCM(e, lam=2.0),
                        m=150, ordering=Ordering.DECREASING_COST)
        assert reverse_r.num_opt >= random_r.num_opt * 0.9


class TestAllSeedTemplatesOptimize:
    @pytest.mark.parametrize("template", seed_templates(), ids=lambda t: t.name)
    def test_template_end_to_end(self, runner, template):
        """Every seed template optimizes, recosts and runs under SCR."""
        result = run(runner, template, lambda e: SCR(e, lam=2.0), m=30, lam=2.0)
        assert result.m == 30
        assert result.num_opt >= 1
        assert result.num_plans >= 1
        assert result.mso >= 1.0
