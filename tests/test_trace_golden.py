"""Golden-trace regression test for serial SCR semantics.

Serializes the full :class:`TraceLog` event sequence of a small
canonical workload under the *serial* technique stack and compares it
byte-for-byte against a checked-in JSON fixture.  Concurrency-motivated
refactors of ``get_plan.py`` / ``manage_cache.py`` / ``scr.py`` (probe/
commit splits, epoch bookkeeping, choice-builder extraction) must not
change what the serial path decides, traces, or certifies — any drift
fails here before it can hide behind interleaving.

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src:tests python tests/test_trace_golden.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.get_plan import CHECK_IMPLS
from repro.core.scr import SCR
from repro.engine.database import Database
from repro.engine.tracing import TraceLog
from repro.query.instance import QueryInstance
from repro.query.template import QueryTemplate, join, range_predicate
from repro.workload.generator import generate_selectivity_vectors

FIXTURE = Path(__file__).parent / "fixtures" / "golden_trace.json"


def canonical_template() -> QueryTemplate:
    return QueryTemplate(
        name="golden_join",
        database="toy",
        tables=["orders", "cust"],
        joins=[join("orders", "o_cust", "cust", "c_id")],
        parameterized=[
            range_predicate("orders", "o_date", "<="),
            range_predicate("cust", "c_bal", "<="),
        ],
    )


def build_golden_trace(check_impl: str = "scalar") -> list[dict]:
    """The canonical run: one template, 40 seeded instances, budget 3."""
    from conftest import build_toy_schema

    db = Database.create(build_toy_schema(), seed=11)
    template = canonical_template()
    trace = TraceLog()
    engine = db.engine(template)
    engine.trace = trace
    scr = SCR(engine, lam=2.0, plan_budget=3, trace=trace, check_impl=check_impl)
    for sv in generate_selectivity_vectors(2, 40, seed=21):
        scr.process(QueryInstance(template.name, sv=sv))
    engine.trace = None  # the engine object is cached per database
    return trace.to_jsonable()


def serialize(rows: list[dict]) -> str:
    return json.dumps(rows, indent=1, sort_keys=True) + "\n"


@pytest.mark.parametrize("check_impl", CHECK_IMPLS)
def test_serial_trace_matches_golden_fixture(check_impl):
    """Both check implementations must reproduce the SAME fixture.

    The columnar hot path is a pure re-implementation of the scalar
    check, so the scalar-era golden trace is the oracle for both: any
    byte of drift under ``check_impl="vectorized"`` is a semantic bug,
    not grounds for a second fixture.
    """
    assert FIXTURE.exists(), (
        f"missing fixture {FIXTURE}; regenerate with "
        "`PYTHONPATH=src:tests python tests/test_trace_golden.py --regen`"
    )
    expected = FIXTURE.read_text()
    actual = serialize(build_golden_trace(check_impl))
    assert actual == expected, (
        f"serial SCR trace (check_impl={check_impl!r}) drifted from the "
        "golden fixture — if the change is intentional, regenerate the "
        "fixture (see module docstring); if not, a refactor just changed "
        "serial semantics"
    )


def test_golden_trace_is_deterministic():
    """The canonical run itself must be reproducible in-process."""
    assert serialize(build_golden_trace()) == serialize(build_golden_trace())


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(serialize(build_golden_trace()))
        print(f"wrote {FIXTURE}")
    else:
        print(__doc__)
