"""Tests for the engine façade and API accounting."""

import pytest

from repro.engine.api import ApiAccounting, EngineCounters
from repro.engine.database import Database
from repro.query.instance import QueryInstance, SelectivityVector
from repro.query.template import QueryTemplate, range_predicate

from conftest import build_toy_schema


class TestApiAccounting:
    def test_record_and_mean(self):
        acc = ApiAccounting()
        acc.record(0.5)
        acc.record(1.5)
        assert acc.calls == 2
        assert acc.mean_seconds == pytest.approx(1.0)

    def test_mean_of_empty(self):
        assert ApiAccounting().mean_seconds == 0.0

    def test_speedup_edge_cases(self):
        counters = EngineCounters()
        assert counters.recost_speedup == 0.0
        counters.optimize.record(1.0)
        assert counters.recost_speedup == float("inf")


class TestEngineApi:
    def test_selectivity_vector_counted(self, toy_engine):
        toy_engine.reset_counters()
        inst = QueryInstance("toy_join", sv=SelectivityVector.of(0.5, 0.5))
        sv = toy_engine.selectivity_vector(inst)
        assert sv == SelectivityVector.of(0.5, 0.5)
        assert toy_engine.counters.selectivity.calls == 1

    def test_optimize_and_recost_counted(self, toy_engine):
        toy_engine.reset_counters()
        result = toy_engine.optimize(SelectivityVector.of(0.2, 0.2))
        toy_engine.recost(result.shrunken_memo, SelectivityVector.of(0.3, 0.3))
        assert toy_engine.counters.optimize.calls == 1
        assert toy_engine.counters.recost.calls == 1
        assert toy_engine.counters.optimize.total_seconds > 0

    def test_reset(self, toy_engine):
        toy_engine.optimize(SelectivityVector.of(0.2, 0.2))
        toy_engine.reset_counters()
        assert toy_engine.counters.optimize.calls == 0


class TestDatabase:
    def test_engine_cached_per_template(self, toy_db, toy_template):
        assert toy_db.engine(toy_template) is toy_db.engine(toy_template)

    def test_template_database_mismatch(self, toy_db):
        other = QueryTemplate(
            name="wrong_db", database="tpch", tables=["orders"],
            parameterized=[range_predicate("orders", "o_date", "<=")],
        )
        with pytest.raises(ValueError, match="targets database"):
            toy_db.engine(other)

    def test_create_builds_statistics(self):
        db = Database.create(build_toy_schema(), seed=1)
        assert db.stats.row_count("orders") == 20_000
        assert db.name == "toy"
