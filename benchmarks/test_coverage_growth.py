"""Cache-coverage growth — the mechanism behind Figures 11 and 18.

The paper's falling numOpt curves happen because each optimized
instance adds an inference region; this benchmark measures that
directly: Monte Carlo coverage of the selectivity space by the cache's
regions after growing prefixes of the workload, alongside the running
numOpt%.  Expected shape: coverage rises monotonically (the cache only
gains anchors) and total coverage (with the cost check) dominates
selectivity-only coverage — §5.3's "Recost finds extra reuse".
"""

from conftest import run_once
from repro.core.coverage import sample_coverage
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.harness.reporting import format_table
from repro.harness.runner import WorkloadRunner
from repro.workload.generator import instances_for_template
from repro.workload.templates import tpch_templates

PREFIXES = (25, 100, 400)


def run_growth():
    runner = WorkloadRunner(db_scale=0.4)
    template = tpch_templates()[0]
    db = runner.database(template.database)
    oracle = runner.oracle(template)
    engine = EngineAPI(template, oracle._optimizer, db.estimator)
    scr = SCR(engine, lam=2.0)
    instances = instances_for_template(template, max(PREFIXES), seed=109)

    rows = []
    processed = 0
    for prefix in PREFIXES:
        for inst in instances[processed:prefix]:
            scr.process(inst)
        processed = prefix
        report = sample_coverage(
            scr.cache, lam=2.0, dimensions=template.dimensions,
            samples=250, seed=7, recost=engine.recost,
        )
        rows.append({
            "m": prefix,
            "sel_coverage": report.selectivity_coverage,
            "total_coverage": report.total_coverage,
            "running_numopt_pct": 100.0 * scr.optimizer_calls / prefix,
            "plans": scr.plans_cached,
        })
    return rows


def test_coverage_growth(experiments, benchmark):
    rows = run_once(benchmark, run_growth)
    print()
    print(format_table(rows, title="Cache coverage vs workload length"))

    # Coverage is monotone in m (anchors only accumulate).
    totals = [row["total_coverage"] for row in rows]
    assert all(a <= b + 1e-9 for a, b in zip(totals, totals[1:]))
    # The cost check extends the selectivity check's reach (§5.3).
    for row in rows:
        assert row["total_coverage"] >= row["sel_coverage"]
    assert rows[-1]["total_coverage"] > rows[-1]["sel_coverage"]
    # Running numOpt falls as coverage rises (the Figure 11 mechanism).
    assert rows[-1]["running_numopt_pct"] < rows[0]["running_numopt_pct"]
    # A warm cache covers a substantial share of the space.
    assert rows[-1]["total_coverage"] > 0.3
