"""Figures 16 & 17 (Appendix H.2) — aggregate MSO and TotalCostRatio.

Paper: heuristic techniques' average MSO is an order of magnitude (or
more) worse than SCR2; SCR2's average TotalCostRatio is ~1.1 ("truly
close to optimal") while even PCM2 reaches ~3 on TotalCostRatio-
hostile orderings and heuristics are far worse on MSO.
"""

from conftest import run_once
from repro.harness.reporting import format_table


def test_fig16_17_aggregate_suboptimality(experiments, benchmark):
    rows = run_once(benchmark, experiments.technique_aggregates)
    cols = ["technique", "mso_mean", "mso_p95", "tc_mean", "tc_p95"]
    print()
    print(format_table(rows, columns=cols,
                       title="Figures 16/17: aggregate MSO and TC"))

    by_name = {row["technique"]: row for row in rows}
    scr = by_name["SCR2"]

    # Figure 16: SCR2's mean MSO far below every heuristic's.
    for name in ("OptOnce", "Ellipse", "Density", "Ranges"):
        assert scr["mso_mean"] < by_name[name]["mso_mean"]
    assert scr["mso_mean"] <= 2.0 * 1.05

    # Figure 17: SCR2 close to optimal in aggregate cost.
    assert scr["tc_mean"] < 1.3
    # OptOnce is the aggregate-cost disaster case.
    assert by_name["OptOnce"]["tc_mean"] > scr["tc_mean"]

    # H.2's skew observation: heuristic MSO distributions are heavily
    # right-skewed — driven by extreme outlier sequences.  A robust
    # check at our scale: the mean sits far above the median for at
    # least one heuristic.
    results = experiments.suite_results()
    from repro.harness.metrics import MetricAggregate

    skewed = False
    for name in ("OptOnce", "Ellipse", "Density", "Ranges"):
        agg = MetricAggregate.over(results[name], "mso")
        if agg.mean > 1.5 * agg.percentile(50):
            skewed = True
    assert skewed
