"""Shared configuration for the per-figure benchmarks.

Each benchmark regenerates one table or figure of the paper at a
scaled-down (laptop) configuration and asserts the *shape* of the
result — who wins, by roughly what factor — matching EXPERIMENTS.md.
The session-scoped :class:`Experiments` instance caches the expensive
suite runs so related figures share one evaluation pass.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
paper-style tables printed by each benchmark.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import ExperimentConfig, Experiments
from repro.workload.orderings import Ordering
from repro.workload.suite import SuiteConfig

BENCH_SUITE = SuiteConfig(
    num_templates=10,
    instances_per_sequence=150,
    instances_high_d=200,
    seed=7,
)

BENCH_ORDERINGS = [
    Ordering.RANDOM,
    Ordering.DECREASING_COST,
    Ordering.INSIDE_OUT,
]


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ is a paper-figure benchmark: tag it
    ``bench`` and ``slow`` so ``-m "not slow"`` skips the directory."""
    for item in items:
        item.add_marker(pytest.mark.bench)
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def experiments() -> Experiments:
    config = ExperimentConfig(
        suite=BENCH_SUITE,
        db_scale=0.4,
        orderings=BENCH_ORDERINGS,
        lam=2.0,
    )
    return Experiments(config)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
