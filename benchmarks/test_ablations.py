"""Ablation benchmarks for SCR's design choices (DESIGN.md §5).

Each ablation swaps one design decision of the paper for an alternative
and measures the consequences on the three metrics:

* LFU eviction (paper, §6.3.1)  vs LRU vs RANDOM;
* bounding function f(α)=α (paper, §5.4) vs f(α)=α²;
* G·L candidate ordering (paper, §6.2) vs region-area vs usage-count;
* linear instance-list scan vs the §6.2 spatial grid index;
* cold start (paper) vs offline seeding (§9 future work).
"""

from conftest import run_once
from repro.core.bounds import LINEAR_BOUND, QUADRATIC_BOUND
from repro.core.get_plan import CandidateOrder
from repro.core.manage_cache import EvictionPolicy
from repro.core.scr import SCR
from repro.core.seeding import grid_points, seed_cache
from repro.engine.api import EngineAPI
from repro.harness.reporting import format_table
from repro.harness.runner import WorkloadRunner
from repro.workload.generator import instances_for_template
from repro.workload.templates import tpch_templates, tpcds_templates

M = 400


def _setup(runner, template):
    db = runner.database(template.database)
    oracle = runner.oracle(template)
    return EngineAPI(template, oracle._optimizer, db.estimator)


def _drive(technique, instances):
    for inst in instances:
        technique.process(inst)
    return technique


def test_ablation_eviction_policy(experiments, benchmark):
    """LFU should not lose to LRU/RANDOM on repeat-heavy workloads."""

    def run():
        runner = WorkloadRunner(db_scale=0.4)
        template = tpch_templates()[0]
        instances = instances_for_template(template, M, seed=71)
        rows = []
        for policy in EvictionPolicy:
            engine = _setup(runner, template)
            scr = _drive(
                SCR(engine, lam=1.2, plan_budget=3, lambda_r=1.0,
                    eviction_policy=policy),
                instances,
            )
            rows.append({
                "policy": policy.value,
                "numopt": scr.optimizer_calls,
                "evictions": scr.manage_cache.stats.plans_evicted,
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation: eviction policy (k=3)"))
    by_policy = {row["policy"]: row for row in rows}
    # Every policy keeps the budget working (evictions happen) and LFU
    # is competitive with the alternatives (within 25%).
    assert all(row["evictions"] >= 1 for row in rows)
    baseline = min(r["numopt"] for r in rows)
    assert by_policy["lfu"]["numopt"] <= baseline * 1.25


def test_ablation_bounding_function(experiments, benchmark):
    """f(α)=α² certifies SubOpt < (GL)², so the same λ yields smaller
    inference regions: more optimizer calls, never fewer."""

    def run():
        runner = WorkloadRunner(db_scale=0.4)
        template = tpch_templates()[0]
        instances = instances_for_template(template, M, seed=73)
        rows = []
        for label, bound in (("linear", LINEAR_BOUND),
                             ("quadratic", QUADRATIC_BOUND)):
            engine = _setup(runner, template)
            scr = _drive(SCR(engine, lam=2.0, bound=bound), instances)
            rows.append({
                "bound": label,
                "numopt": scr.optimizer_calls,
                "plans": scr.max_plans_cached,
                "violations_detected": (
                    scr.detector.violations_detected if scr.detector else 0
                ),
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation: BCG bounding function"))
    by_bound = {row["bound"]: row for row in rows}
    assert by_bound["quadratic"]["numopt"] >= by_bound["linear"]["numopt"]
    # The looser certificate can only reduce detected violations.
    assert (by_bound["quadratic"]["violations_detected"]
            <= by_bound["linear"]["violations_detected"] + 1)


def test_ablation_candidate_order(experiments, benchmark):
    """§6.2's G·L ordering should spend the fewest recost calls per hit."""

    def run():
        runner = WorkloadRunner(db_scale=0.4)
        template = next(
            t for t in tpcds_templates() if t.name == "tpcds_q25_like"
        )
        instances = instances_for_template(template, M, seed=79)
        rows = []
        for order in CandidateOrder:
            engine = _setup(runner, template)
            scr = _drive(
                SCR(engine, lam=1.5, candidate_order=order), instances
            )
            hits = scr.get_plan.cost_hits
            rows.append({
                "order": order.value,
                "numopt": scr.optimizer_calls,
                "cost_hits": hits,
                "recosts_per_hit": (
                    scr.get_plan.total_recost_calls / hits if hits else 0.0
                ),
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation: cost-check candidate order"))
    by_order = {row["order"]: row for row in rows}
    gl = by_order["gl"]
    for other in ("area", "usage"):
        # G·L ordering finds hits at least as cheaply as the alternatives.
        if by_order[other]["cost_hits"]:
            assert gl["recosts_per_hit"] <= (
                by_order[other]["recosts_per_hit"] * 1.2 + 0.5
            )


def test_ablation_spatial_index(experiments, benchmark):
    """The §6.2 grid index cuts instance-list scan work at equal quality."""

    def run():
        runner = WorkloadRunner(db_scale=0.4)
        template = tpch_templates()[0]
        instances = instances_for_template(template, M, seed=83)
        rows = []
        for label, use_index in (("linear-scan", False), ("grid-index", True)):
            engine = _setup(runner, template)
            scr = _drive(
                SCR(engine, lam=2.0, spatial_index=use_index), instances
            )
            rows.append({
                "getplan": label,
                "numopt": scr.optimizer_calls,
                "entries_scanned": scr.get_plan.entries_scanned,
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation: instance-list access path"))
    linear, indexed = rows
    # The index prunes scans and keeps reuse in the same ballpark.
    assert indexed["entries_scanned"] <= linear["entries_scanned"]
    assert indexed["numopt"] <= linear["numopt"] * 2 + 5


def test_ablation_offline_seeding(experiments, benchmark):
    """§9 hybrid: a seeded cache cuts online optimizer calls."""

    def run():
        runner = WorkloadRunner(db_scale=0.4)
        template = tpch_templates()[0]
        instances = instances_for_template(template, M, seed=89)
        rows = []

        engine_cold = _setup(runner, template)
        cold = _drive(SCR(engine_cold, lam=2.0), instances)
        rows.append({
            "mode": "cold (paper)",
            "offline_opt": 0,
            "online_opt": cold.optimizer_calls,
            "plans": cold.max_plans_cached,
        })

        engine_warm = _setup(runner, template)
        warm = SCR(engine_warm, lam=2.0)
        report = seed_cache(
            warm, engine_warm, grid_points(template.dimensions, 5)
        )
        before = engine_warm.counters.optimize.calls
        _drive(warm, instances)
        rows.append({
            "mode": "seeded (sec. 9)",
            "offline_opt": report.points_optimized,
            "online_opt": engine_warm.counters.optimize.calls - before,
            "plans": warm.max_plans_cached,
        })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation: offline seeding"))
    cold, seeded = rows
    assert seeded["online_opt"] < cold["online_opt"]
    assert seeded["offline_opt"] > 0
