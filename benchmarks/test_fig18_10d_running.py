"""Figure 18 (Appendix H.3) — 10-d query: running numOpt % vs m.

Paper: for a 10-dimensional query the optimizer-call fraction drops
substantially as the sequence grows (~25% at m=1000 to ~10% at
m=5000 for SCR2, tracking Ellipse), while PCM2 stays much higher
(~35% even at m=5000).
"""

from conftest import run_once
from repro.harness.reporting import format_table
from repro.workload.templates import dimension_sweep_template

LENGTHS = (250, 500, 1000, 2000)


def test_fig18_running_numopt_10d(experiments, benchmark):
    template = dimension_sweep_template(10)
    rows = run_once(
        benchmark,
        lambda: experiments.numopt_vs_m(template, lengths=LENGTHS),
    )
    print()
    print(format_table(rows, title="Figure 18: running numOpt % (10-d)"))

    series = {}
    for row in rows:
        series.setdefault(row["technique"], {})[row["m"]] = row["numopt_pct"]

    # Overheads fall with m for SCR2 (the paper's headline trend).
    assert series["SCR2"][LENGTHS[-1]] < series["SCR2"][LENGTHS[0]]
    # SCR2 stays below PCM2 at full length.
    assert series["SCR2"][LENGTHS[-1]] < series["PCM2"][LENGTHS[-1]]
    # The larger lambda pays off throughout the 10-d run.
    assert series["SCR2"][LENGTHS[-1]] <= series["SCR1.1"][LENGTHS[-1]]
