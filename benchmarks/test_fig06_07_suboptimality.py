"""Figures 6 & 7 — MSO / TotalCostRatio distributions per technique.

Paper: Optimize-Once shows many sequences with very high MSO and TC;
Ellipse reduces TC but keeps frequent high-MSO sequences; PCM2 and SCR2
keep MSO <= 2 except for rare assumption violations, and SCR2 processes
99% of sequences with TC below ~2.16.
"""

from conftest import run_once
from repro.harness.reporting import format_table


def test_fig06_optonce_ellipse_distributions(experiments, benchmark):
    dists = run_once(
        benchmark,
        lambda: experiments.suboptimality_distributions(["OptOnce", "Ellipse"]),
    )
    rows = []
    for name, series in dists.items():
        n = len(series["mso"])
        high_mso = sum(1 for m in series["mso"] if m > 2.0)
        rows.append({
            "technique": name,
            "sequences": n,
            "mso_gt_2": high_mso,
            "tc_max": max(series["total_cost_ratio"]),
            "mso_max": max(series["mso"]),
        })
    print()
    print(format_table(rows, title="Figure 6: OptOnce & Ellipse distributions"))

    once = dists["OptOnce"]
    ellipse = dists["Ellipse"]
    # Both heuristic-era techniques leave many high-MSO sequences...
    assert sum(1 for m in once["mso"] if m > 2.0) >= len(once["mso"]) * 0.3
    assert max(ellipse["mso"]) > 2.0
    # ...but Ellipse improves aggregate TC over OptOnce.
    assert (sum(ellipse["total_cost_ratio"]) / len(ellipse["total_cost_ratio"])
            < sum(once["total_cost_ratio"]) / len(once["total_cost_ratio"]))


def test_fig07_pcm_scr_distributions(experiments, benchmark):
    dists = run_once(
        benchmark,
        lambda: experiments.suboptimality_distributions(["PCM2", "SCR2"]),
    )
    rows = []
    for name, series in dists.items():
        n = len(series["mso"])
        rows.append({
            "technique": name,
            "sequences": n,
            "mso_le_2": sum(1 for m in series["mso"] if m <= 2.0 * 1.001),
            "tc_p99_ish": sorted(series["total_cost_ratio"])[int(0.99 * (n - 1))],
        })
    print()
    print(format_table(rows, title="Figure 7: PCM2 & SCR2 distributions"))

    for name in ("PCM2", "SCR2"):
        series = dists[name]
        n = len(series["mso"])
        within = sum(1 for m in series["mso"] if m <= 2.0 * 1.001)
        # Bound holds for the vast majority (violations are rare).
        assert within >= n * 0.9, f"{name}: only {within}/{n} within bound"
    scr_tc = sorted(dists["SCR2"]["total_cost_ratio"])
    assert scr_tc[int(0.99 * (len(scr_tc) - 1))] < 2.2  # paper: 2.16
