"""Overload protection under sustained 4× capacity: graceful brownout.

Two runs over the same 8-template simulated-latency setup as the
serving-throughput benchmark:

* **4× capacity, paced** — submissions arrive at four times the
  measured burst capacity with an 80 ms end-to-end deadline.  The
  acceptance bar: zero hangs (every future resolves), every response
  labeled exactly one of certified / uncertified / shed with a traced
  reason, served p99 latency bounded instead of queue-collapse growth,
  certified choices within the *relaxed* λ ceiling against an
  independent oracle, and the brownout controller actually engaging.
* **1× load, burst** — the same workload pushed through an
  overload-enabled manager with ample headroom must stay at brownout
  level ``normal``, shed nothing, certify everything and keep
  throughput within 5% of the plain (PR 2) concurrent manager.
"""

from __future__ import annotations

import time

from conftest import run_once
from repro.engine.database import Database
from repro.engine.tracing import TraceEventKind, TraceLog
from repro.harness.metrics import ServiceLevelSummary
from repro.harness.reporting import format_table
from repro.obs import Observability
from repro.serving import (
    ConcurrentPQOManager,
    OverloadPolicy,
    ShedError,
    simulated_latency_wrapper,
)
from test_serving_throughput import (
    LATENCY,
    make_workload,
    serving_schema,
    serving_templates,
)

LAM = 2.0
SEED = 211
NUM_WORKERS = 8
INSTANCES_PER_TEMPLATE = 40     # 1× comparison workload (8 × 40 = 320)
OVERLOAD_PER_TEMPLATE = 80      # 4× paced workload (8 × 80 = 640)
DEADLINE_SECONDS = 0.080
RELAX_FACTOR = 1.5
RELAXED_CEILING = LAM * RELAX_FACTOR
DRAIN_TIMEOUT = 60.0            # "zero hangs" bar: everything resolves


def build_manager(policy, trace=None):
    db = Database.create(serving_schema(), seed=11)
    # Observability attached on both overload runs: the 1x ratio
    # acceptance below therefore bounds its overhead in the hot path.
    manager = ConcurrentPQOManager(
        database=db,
        max_workers=NUM_WORKERS,
        engine_wrapper=simulated_latency_wrapper(**LATENCY),
        overload=policy,
        trace=trace,
        obs=Observability(),
    )
    for t in serving_templates():
        manager.register(t, lam=LAM)
    return db, manager


def overload_policy() -> OverloadPolicy:
    """Tight budgets: small queues, a 2-wide optimizer pool, deadlines."""
    return OverloadPolicy(
        queue_limit=8,
        default_deadline_seconds=DEADLINE_SECONDS,
        optimizer_concurrency=2,
        gate_timeout=0.010,
        evaluate_every=20,
        lambda_relax_factor=RELAX_FACTOR,
        lambda_ceiling=RELAXED_CEILING,
    )


def ample_policy() -> OverloadPolicy:
    """Headroom everywhere: at 1× load nothing should ever trip."""
    return OverloadPolicy(
        queue_limit=128,
        default_deadline_seconds=None,
        optimizer_concurrency=NUM_WORKERS,
        gate_timeout=1.0,
        evaluate_every=20,
    )


def run_plain_burst(workload):
    """PR 2 baseline: no overload machinery at all."""
    db = Database.create(serving_schema(), seed=11)
    manager = ConcurrentPQOManager(
        database=db,
        max_workers=NUM_WORKERS,
        engine_wrapper=simulated_latency_wrapper(**LATENCY),
    )
    for t in serving_templates():
        manager.register(t, lam=LAM)
    start = time.perf_counter()
    choices = manager.process_many(workload, dedupe=False)
    elapsed = time.perf_counter() - start
    manager.close()
    return elapsed, choices


def run_overload_burst(workload):
    """Same burst through the overload-enabled manager (ample policy)."""
    _, manager = build_manager(ample_policy())
    start = time.perf_counter()
    choices = manager.process_many(workload, dedupe=False)
    elapsed = time.perf_counter() - start
    level = manager.brownout_level
    transitions = len(manager._overload_coordinator.controller.transitions)
    report = manager.overload_report()
    manager.close()
    return elapsed, choices, level, transitions, report


def run_paced_overload(workload, offered_qps, trace):
    """Submit at a fixed offered rate; resolve every future."""
    db, manager = build_manager(overload_policy(), trace=trace)
    latencies: dict[int, float] = {}
    futures = []
    interval = 1.0 / offered_qps
    start = time.perf_counter()
    for i, instance in enumerate(workload):
        target = start + i * interval
        now = time.perf_counter()
        if target > now:
            time.sleep(target - now)
        submitted = time.perf_counter()

        def on_done(fut, i=i, submitted=submitted):
            latencies[i] = time.perf_counter() - submitted

        fut = manager.submit(instance)
        fut.add_done_callback(on_done)
        futures.append(fut)

    outcomes = []
    deadline_at = time.monotonic() + DRAIN_TIMEOUT
    for fut in futures:
        remaining = max(0.1, deadline_at - time.monotonic())
        exc = fut.exception(timeout=remaining)  # raises TimeoutError = hang
        outcomes.append(exc if exc is not None else fut.result())
    elapsed = time.perf_counter() - start
    stats_rows = manager.serving_report()
    report = manager.overload_report()
    transitions = len(manager._overload_coordinator.controller.transitions)
    audit = manager.obs.audit
    manager.close()
    return db, outcomes, latencies, elapsed, stats_rows, report, transitions, audit


def certified_violations(db, workload, outcomes, bound) -> int:
    """Certified responses whose true sub-optimality exceeds ``bound``,
    measured against the unwrapped engine as oracle."""
    oracles = {t.name: db.engine(t) for t in serving_templates()}
    violations = 0
    for instance, outcome in zip(workload, outcomes):
        if isinstance(outcome, BaseException) or not outcome.certified:
            continue
        oracle = oracles[instance.template_name]
        optimal = oracle.optimize(instance.sv).cost
        chosen = oracle.recost(outcome.shrunken_memo, instance.sv)
        if chosen / optimal > bound * (1 + 1e-6):
            violations += 1
    return violations


def measure():
    # -- 1× baseline and comparison ---------------------------------------
    workload_1x = make_workload(serving_templates(), INSTANCES_PER_TEMPLATE, SEED)
    plain_s, plain_choices = run_plain_burst(workload_1x)
    ov_s, ov_choices, level_1x, transitions_1x, report_1x = run_overload_burst(
        workload_1x
    )
    capacity_qps = len(workload_1x) / plain_s

    # -- 4× sustained, paced ----------------------------------------------
    workload_4x = make_workload(
        serving_templates(), OVERLOAD_PER_TEMPLATE, SEED + 1
    )
    trace = TraceLog()
    (db, outcomes, latencies, paced_s, stats_rows, report_4x, transitions_4x,
     audit) = run_paced_overload(
        workload_4x, offered_qps=4.0 * capacity_qps, trace=trace
    )

    shed = [o for o in outcomes if isinstance(o, ShedError)]
    other_errors = [
        o for o in outcomes
        if isinstance(o, BaseException) and not isinstance(o, ShedError)
    ]
    served = [o for o in outcomes if not isinstance(o, BaseException)]
    summary = ServiceLevelSummary.from_outcomes(
        latencies_s=[
            latencies[i] for i, o in enumerate(outcomes)
            if not isinstance(o, BaseException)
        ],
        certified_flags=[c.certified for c in served],
        shed=len(shed),
        deadline_seconds=DEADLINE_SECONDS,
    )
    served_ms = sorted(
        latencies[i] * 1e3 for i, o in enumerate(outcomes)
        if not isinstance(o, BaseException)
    )
    p99_ms = served_ms[int(0.99 * (len(served_ms) - 1))] if served_ms else 0.0
    decision_events = [
        e for e in trace.of_kind(TraceEventKind.OVERLOAD)
        if e.check in ("shed", "uncertified_serve", "queue_reject")
    ]
    return {
        "row": {
            "capacity_qps": capacity_qps,
            "offered_qps": 4.0 * capacity_qps,
            "responses": len(outcomes),
            "certified": summary.certified,
            "uncertified": summary.uncertified,
            "shed": summary.shed,
            "errors": len(other_errors),
            "p99_ms": p99_ms,
            "deadline_hit": summary.deadline_hit_rate,
            "transitions": transitions_4x,
            "violations": certified_violations(
                db, workload_4x, outcomes, RELAXED_CEILING
            ),
            "audit_accounted": sum(audit.outcome_totals().values()),
            "audit_certified": audit.outcome_totals()["certified"],
            "audit_shed": audit.outcome_totals()["shed"],
            "audit_violations": audit.total_violations,
        },
        "one_x": {
            "plain_qps": len(workload_1x) / plain_s,
            "overload_qps": len(workload_1x) / ov_s,
            "ratio": plain_s / ov_s,
            "brownout": level_1x.name.lower(),
            "transitions": transitions_1x,
            "uncertified": sum(1 for c in ov_choices if not c.certified),
            "plain_uncertified": sum(
                1 for c in plain_choices if not c.certified
            ),
        },
        "shed_errors": shed,
        "decision_events": decision_events,
        "report_4x": report_4x,
        "stats_rows": stats_rows,
    }


def test_overload_shedding(benchmark):
    result = run_once(benchmark, measure)
    row, one_x = result["row"], result["one_x"]
    print()
    print(format_table([row], title="4x sustained load with overload protection"))
    print()
    print(format_table([one_x], title="1x burst: overload-enabled vs plain"))
    print()
    print(format_table([result["report_4x"]], title="Overload report (4x)"))
    print()
    print(format_table(result["stats_rows"], title="Per-shard stats (4x)"))

    # Zero hangs, every response accounted for and labeled.
    assert row["errors"] == 0, "only PlanChoice or ShedError may come back"
    assert row["certified"] + row["uncertified"] + row["shed"] == row["responses"]

    # The runtime audit trail independently reaches the same ledger:
    # exactly one outcome counter per response, matching the futures,
    # and zero live λ-violations (certified bounds are checked against
    # the λ in force — the *relaxed* one under brownout).
    assert row["audit_accounted"] == row["responses"]
    assert row["audit_certified"] == row["certified"]
    assert row["audit_shed"] == row["shed"]
    assert row["audit_violations"] == 0, (
        "the runtime guarantee audit flagged a certified bound above λ"
    )
    for err in result["shed_errors"]:
        assert err.reason, "every shed carries a machine-readable reason"

    # Every shed / uncertified / reject decision left a traced reason code.
    assert all(e.detail or e.check == "queue_reject"
               for e in result["decision_events"])
    degraded = row["uncertified"] + row["shed"]
    if degraded:
        assert result["decision_events"], "degraded serves must be traced"

    # Bounded in-deadline tail: p99 of served responses stays within a
    # small multiple of the deadline instead of queue-collapse growth.
    assert row["p99_ms"] <= DEADLINE_SECONDS * 1e3 * 10, (
        f"p99 {row['p99_ms']:.1f} ms indicates unbounded queueing"
    )

    # The guarantee, relaxed but never broken: certified responses stay
    # within the λ ceiling the brownout controller is allowed to widen to.
    assert row["violations"] == 0, (
        "certified choice exceeded the relaxed λ ceiling against the oracle"
    )

    # 4× sustained overload must actually engage the protection.
    assert degraded > 0, "4x load should force degraded serves"
    assert row["transitions"] >= 1, "brownout controller never engaged at 4x"

    # At 1× the machinery is invisible: normal level, everything
    # certified, throughput within 5% of the plain concurrent manager.
    assert one_x["brownout"] == "normal"
    assert one_x["transitions"] == 0
    assert one_x["uncertified"] == one_x["plain_uncertified"]
    assert one_x["ratio"] >= 0.95, (
        f"overload-enabled serving lost {100 * (1 - one_x['ratio']):.1f}% "
        "throughput at 1x load (must be within 5%)"
    )
