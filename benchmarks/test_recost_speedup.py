"""Appendix B — the Recost API's speed and the shrunken memo's size.

Paper: a Recost call takes 2-10ms versus optimizer calls up to two
orders of magnitude slower, and pruning the memo to the winning plan
shrinks it by ~70% or more for complex queries.  This benchmark
measures our implementation's actual ratio per database.
"""


from conftest import run_once
from repro.engine.api import EngineAPI
from repro.harness.reporting import format_table
from repro.harness.runner import WorkloadRunner
from repro.query.instance import SelectivityVector
from repro.workload.templates import (
    rd1_templates,
    rd2_templates,
    tpcds_templates,
    tpch_templates,
)

TEMPLATES = [
    next(t for t in tpch_templates() if t.name == "tpch_local_supplier"),
    next(t for t in tpcds_templates() if t.name == "tpcds_q18_like"),
    next(t for t in rd1_templates() if t.name == "rd1_full_chain"),
    next(t for t in rd2_templates() if t.name == "rd2_ten_dim"),
]


def measure():
    runner = WorkloadRunner(db_scale=0.4)
    rows = []
    for template in TEMPLATES:
        db = runner.database(template.database)
        oracle = runner.oracle(template)
        engine = EngineAPI(template, oracle._optimizer, db.estimator)
        d = template.dimensions
        base = SelectivityVector.from_sequence([0.1] * d)
        result = engine.optimize(base)
        for i in range(40):
            sv = SelectivityVector.from_sequence(
                [min(1.0, 0.05 + 0.02 * i)] * d
            )
            engine.optimize(sv)
            engine.recost(result.shrunken_memo, sv)
        counters = engine.counters
        rows.append({
            "template": template.name,
            "opt_ms": counters.optimize.mean_seconds * 1e3,
            "recost_us": counters.recost.mean_seconds * 1e6,
            "speedup": counters.recost_speedup,
            "memo_exprs": result.memo_expressions,
            "shrunk_nodes": result.shrunken_memo.node_count,
            "shrink_pct": 100.0 * (1 - result.shrunken_memo.node_count
                                   / max(1, result.memo_expressions)),
        })
    return rows


def test_recost_speedup_and_memo_shrink(experiments, benchmark):
    rows = run_once(benchmark, measure)
    print()
    print(format_table(rows, title="Appendix B: Recost speedup & memo shrink"))

    for row in rows:
        # Recost is at least an order of magnitude cheaper everywhere;
        # the paper reports up to two orders on complex queries.
        assert row["speedup"] > 10, row["template"]
        # Memo shrinking removes the vast majority of expressions
        # (paper: ~70%+).
        assert row["shrink_pct"] > 70, row["template"]
    # The deepest join graph should show a large ratio.
    assert max(row["speedup"] for row in rows) > 50
