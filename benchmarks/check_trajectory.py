"""Validator for the checked-in ``BENCH_*.json`` perf trajectories.

The trajectory files are part of the repo contract: every run appended
by the benchmark suites must carry the v2 envelope (schema_version,
benchmark name, per-run metadata header) and the newest run must not
silently regress against the one before it.  CI runs this after the
benchmark step; it exits non-zero on the first malformed append or on
any >20% drop in a gated throughput/speedup figure that nobody
annotated.

Usage::

    python benchmarks/check_trajectory.py [BENCH_file.json ...]

With no arguments, validates every ``BENCH_*.json`` at the repo root.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_VERSION = 2

#: A run may carry measurements under exactly one of these keys.
RUN_PAYLOAD_KEYS = ("results", "summary")

#: Regression tolerance: the newest run may lose at most this fraction
#: of the previous run's figure before the check fails.  Perf noise on
#: shared CI runners stays well inside 20%; a real regression does not.
MAX_SILENT_REGRESSION = 0.20

#: Per-benchmark figures watched for silent regressions.  Each entry:
#: (row-key fields identifying a series, the metric, higher-is-better).
REGRESSION_WATCH = {
    "getplan_hotpath": (("m", "d"), "speedup"),
}


def _is_timestamp(value) -> bool:
    return (
        isinstance(value, str)
        and len(value) >= 19
        and value[4] == "-"
        and value[10] == "T"
    )


def validate_document(doc, path: str) -> list[str]:
    """Structural validation of one trajectory document (v2 envelope)."""
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(f"{path}: {msg}")

    if not isinstance(doc, dict):
        err("document is not a JSON object")
        return errors
    if doc.get("schema_version") != SCHEMA_VERSION:
        err(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
        return errors
    if not isinstance(doc.get("benchmark"), str) or not doc["benchmark"]:
        err("missing benchmark name")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        err("runs must be a non-empty list")
        return errors
    previous_ts = ""
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            err(f"{where} is not an object")
            continue
        if not _is_timestamp(run.get("timestamp")):
            err(f"{where}.timestamp is not an ISO-8601 string")
        elif run["timestamp"] < previous_ts:
            err(f"{where}.timestamp goes backwards")
        else:
            previous_ts = run["timestamp"]
        meta = run.get("meta")
        if not isinstance(meta, dict):
            err(f"{where}.meta header is missing")
        payloads = [k for k in RUN_PAYLOAD_KEYS if k in run]
        if len(payloads) != 1:
            err(
                f"{where} must carry exactly one of {RUN_PAYLOAD_KEYS}, "
                f"found {payloads or 'none'}"
            )
        extra = set(run) - {"timestamp", "meta", *RUN_PAYLOAD_KEYS}
        if extra:
            err(f"{where} has unexpected fields {sorted(extra)}")
    return errors


def check_regressions(doc, path: str) -> list[str]:
    """Newest-vs-previous comparison on the watched figures.

    Only consecutive runs are compared: a slow decay across many runs
    is the gate tests' job; this catches the single silent >20% cliff
    that a gate set below current performance would wave through.
    """
    watch = REGRESSION_WATCH.get(doc.get("benchmark"))
    runs = doc.get("runs") or []
    if watch is None or len(runs) < 2:
        return []
    key_fields, metric = watch
    errors: list[str] = []

    def series(run) -> dict[tuple, float]:
        out = {}
        for row in run.get("results", ()):  # summaries are not gated
            if metric in row:
                key = tuple(row.get(f) for f in key_fields)
                out[key] = float(row[metric])
        return out

    previous, latest = series(runs[-2]), series(runs[-1])
    for key, before in sorted(previous.items()):
        after = latest.get(key)
        if after is None or before <= 0:
            continue
        drop = (before - after) / before
        if drop > MAX_SILENT_REGRESSION:
            label = ", ".join(
                f"{f}={v}" for f, v in zip(key_fields, key)
            )
            errors.append(
                f"{path}: {metric} at ({label}) dropped "
                f"{drop:.0%} ({before} -> {after}) — over the "
                f"{MAX_SILENT_REGRESSION:.0%} silent-regression budget"
            )
    return errors


def check_file(path: Path) -> list[str]:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    errors = validate_document(doc, str(path))
    if not errors:
        errors = check_regressions(doc, str(path))
    return errors


def main(argv: list[str]) -> int:
    if argv:
        paths = [Path(a) for a in argv]
    else:
        paths = sorted(Path(__file__).parents[1].glob("BENCH_*.json"))
    if not paths:
        print("check_trajectory: no BENCH_*.json files found")
        return 1
    failures = []
    for path in paths:
        errors = check_file(path)
        if errors:
            failures.extend(errors)
        else:
            doc = json.loads(path.read_text(encoding="utf-8"))
            print(
                f"ok: {path} ({doc['benchmark']}, "
                f"{len(doc['runs'])} run(s))"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
