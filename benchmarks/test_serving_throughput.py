"""Serving-layer throughput: concurrent vs. serial SCR.

The concurrent serving layer exists to overlap the engine's network/
compute latency across templates and workers; this benchmark measures
that overlap directly.  Both managers serve the *same* multi-template
workload against engines wrapped with simulated per-call latency
(optimize ≈ 10 ms, recost ≈ 1 ms, sVector ≈ 0.1 ms — the paper's
Appendix B magnitudes for a remote optimizer), so the measured speedup
reflects scheduling, sharding and lock design rather than Python
compute.

Acceptance: with 8 workers over an 8-template workload the concurrent
manager must be ≥ 3× the serial :class:`PQOManager`'s throughput while
certifying every choice, with zero observed λ violations against an
independent oracle.
"""

from __future__ import annotations

import random
import time

from conftest import run_once
from repro.catalog.schema import Column, Schema, Table
from repro.core.manager import PQOManager
from repro.engine.database import Database
from repro.harness.reporting import format_table
from repro.obs import Observability
from repro.query.instance import QueryInstance
from repro.query.template import QueryTemplate, join, range_predicate
from repro.serving import ConcurrentPQOManager, simulated_latency_wrapper
from repro.workload.generator import generate_selectivity_vectors

LAM = 2.0
SEED = 97
NUM_WORKERS = 8
INSTANCES_PER_TEMPLATE = 40
MIN_SPEEDUP = 3.0
#: Distributed tracing must stay within this fraction of the untraced
#: serving wall-clock (the CI tracing-overhead gate).
MAX_TRACING_OVERHEAD = 0.05

LATENCY = dict(
    optimize_seconds=0.010,
    recost_seconds=0.001,
    selectivity_seconds=0.0001,
)


def serving_schema() -> Schema:
    """The tests' two-table toy schema (kept local: benchmarks must not
    import from tests/)."""
    schema = Schema("toy")
    schema.add_table(Table(
        "orders",
        [
            Column("o_id", domain_size=10**6),
            Column("o_date", domain_size=1000),
            Column("o_cust", domain_size=1000),
            Column("o_amount", domain_size=5000, skew=0.7),
        ],
        row_count=20_000,
        primary_key="o_id",
    ))
    schema.add_table(Table(
        "cust",
        [
            Column("c_id", domain_size=10**6),
            Column("c_bal", domain_size=1000, skew=0.5),
        ],
        row_count=2_000,
        primary_key="c_id",
    ))
    schema.add_foreign_key("orders", "o_cust", "cust", "c_id")
    schema.add_index("orders", "o_date")
    schema.add_index("orders", "o_cust")
    schema.add_index("cust", "c_id")
    schema.add_index("cust", "c_bal")
    return schema


def serving_templates() -> list[QueryTemplate]:
    """Eight join templates with distinct predicate pairs."""
    specs = [
        (("orders", "o_date", "<="), ("cust", "c_bal", "<=")),
        (("orders", "o_date", "<="), ("orders", "o_amount", "<=")),
        (("orders", "o_amount", "<="), ("cust", "c_bal", "<=")),
        (("orders", "o_amount", ">="), ("cust", "c_bal", "<=")),
        (("cust", "c_bal", ">="), ("orders", "o_date", ">=")),
        (("orders", "o_date", ">="), ("orders", "o_amount", "<=")),
        (("cust", "c_bal", "<="), ("orders", "o_date", ">=")),
        (("orders", "o_amount", "<="), ("orders", "o_date", "<=")),
    ]
    return [
        QueryTemplate(
            name=f"bench_t{i}",
            database="toy",
            tables=["orders", "cust"],
            joins=[join("orders", "o_cust", "cust", "c_id")],
            parameterized=[range_predicate(*a), range_predicate(*b)],
        )
        for i, (a, b) in enumerate(specs)
    ]


def make_workload(templates, per_template: int, seed: int):
    instances = []
    for i, template in enumerate(templates):
        for sv in generate_selectivity_vectors(2, per_template, seed=seed + i):
            instances.append(QueryInstance(template.name, sv=sv))
    random.Random(seed).shuffle(instances)
    return instances


def run_serial(templates, workload):
    db = Database.create(serving_schema(), seed=11)
    manager = PQOManager(
        database=db, engine_wrapper=simulated_latency_wrapper(**LATENCY)
    )
    for t in templates:
        manager.register(t, lam=LAM)
    start = time.perf_counter()
    choices = [manager.process(instance) for instance in workload]
    return time.perf_counter() - start, db, choices


def run_concurrent(templates, workload, spans_enabled=True):
    db = Database.create(serving_schema(), seed=11)
    # The observability handle sits in the measured path: the speedup
    # acceptance below therefore also bounds its serving overhead.
    manager = ConcurrentPQOManager(
        database=db,
        max_workers=NUM_WORKERS,
        engine_wrapper=simulated_latency_wrapper(**LATENCY),
        obs=Observability(spans_enabled=spans_enabled),
    )
    for t in templates:
        manager.register(t, lam=LAM)
    start = time.perf_counter()
    # dedupe=False: serve every instance so throughput is comparable.
    choices = manager.process_many(workload, dedupe=False)
    elapsed = time.perf_counter() - start
    manager.close()
    return elapsed, db, manager, choices


def observed_violations(db, templates, workload, choices) -> int:
    """Certified choices whose true sub-optimality exceeds λ, measured
    against the unwrapped (no simulated latency) engine as oracle."""
    oracles = {t.name: db.engine(t) for t in templates}
    violations = 0
    for instance, choice in zip(workload, choices):
        if not choice.certified:
            continue
        oracle = oracles[instance.template_name]
        optimal = oracle.optimize(instance.sv).cost
        chosen = oracle.recost(choice.shrunken_memo, instance.sv)
        if chosen / optimal > LAM * (1 + 1e-6):
            violations += 1
    return violations


def measure():
    templates = serving_templates()
    workload = make_workload(templates, INSTANCES_PER_TEMPLATE, SEED)
    serial_s, _, serial_choices = run_serial(templates, workload)
    conc_s, db, manager, conc_choices = run_concurrent(templates, workload)
    audit = manager.obs.audit
    outcomes = audit.outcome_totals()
    # Anchor-attribution accounting identity (DESIGN.md §15): summed
    # per-anchor hit counters must equal getPlan's hit counters even
    # after 8 workers raced through the probe/commit split.
    identity_errors = []
    for t in templates:
        scr = manager.shard(t.name).scr
        sel, cost, spend = scr.cache.anchor_hit_totals(exclude_adopted=True)
        gp = scr.get_plan
        if (sel, cost) != (gp.selectivity_hits, gp.cost_hits):
            identity_errors.append(
                f"{t.name}: anchors ({sel}, {cost}) != "
                f"getPlan ({gp.selectivity_hits}, {gp.cost_hits})"
            )
        if spend > gp.total_recost_calls:
            identity_errors.append(
                f"{t.name}: anchor recost spend {spend} exceeds "
                f"getPlan total {gp.total_recost_calls}"
            )
    return {
        "templates": len(templates),
        "instances": len(workload),
        "serial_s": serial_s,
        "concurrent_s": conc_s,
        "speedup": serial_s / conc_s,
        "serial_qps": len(workload) / serial_s,
        "concurrent_qps": len(workload) / conc_s,
        "uncertified": sum(1 for c in conc_choices if not c.certified),
        "violations": observed_violations(db, templates, workload, conc_choices),
        "accounted": sum(outcomes.values()),
        "certified_counted": outcomes["certified"],
        "violations_live": audit.total_violations,
        "anchor_identity_errors": identity_errors,
        "report": manager.serving_report(),
    }


def test_concurrent_serving_throughput(benchmark):
    row = run_once(benchmark, measure)
    report = row.pop("report")
    identity_errors = row.pop("anchor_identity_errors")
    print()
    print(format_table([row], title="Serving throughput: 8 workers vs serial"))
    print()
    print(format_table(report, title="Per-shard serving stats"))

    assert row["uncertified"] == 0, "every concurrent choice must be certified"
    assert row["violations"] == 0, "certified choice exceeded λ against oracle"

    # The runtime audit trail agrees with reality: every response hit
    # exactly one outcome counter, and the live λ check — which needs no
    # oracle — saw zero violations too.
    assert row["accounted"] == row["instances"], (
        "outcome counters must account for every response exactly once"
    )
    assert row["certified_counted"] == row["instances"] - row["uncertified"]
    assert row["violations_live"] == 0, (
        "the runtime guarantee audit flagged a certified bound above λ"
    )
    assert identity_errors == [], (
        "anchor attribution drifted from the getPlan hit counters under "
        f"concurrency: {identity_errors}"
    )
    assert row["speedup"] >= MIN_SPEEDUP, (
        f"8-worker serving speedup {row['speedup']:.2f}× below the "
        f"{MIN_SPEEDUP}× acceptance threshold"
    )


def measure_tracing_overhead():
    """The same concurrent workload served twice: spans off, spans on.

    Per-request tracing records ~6 spans (serving.process, queue wait,
    scr.* checks, engine.* calls) plus contextvar propagation across the
    shard pool; the gate asserts all of it costs ≤5% wall-clock against
    the engine-latency-dominated baseline.
    """
    templates = serving_templates()
    workload = make_workload(templates, INSTANCES_PER_TEMPLATE, SEED)
    # Interleave off/on runs so drift (thermal, page cache) cancels.
    off_s, on_s, span_count = [], [], 0
    for _ in range(2):
        elapsed, _, manager, _ = run_concurrent(
            templates, workload, spans_enabled=False
        )
        off_s.append(elapsed)
        assert len(manager.obs.spans) == 0
        elapsed, _, manager, _ = run_concurrent(
            templates, workload, spans_enabled=True
        )
        on_s.append(elapsed)
        span_count = len(manager.obs.spans)
    baseline, traced = min(off_s), min(on_s)
    return {
        "instances": len(workload),
        "untraced_s": baseline,
        "traced_s": traced,
        "overhead": traced / baseline - 1.0,
        "spans_recorded": span_count,
        "spans_per_request": span_count / len(workload),
    }


def test_tracing_overhead(benchmark):
    row = run_once(benchmark, measure_tracing_overhead)
    print()
    print(format_table(
        [row], title="Tracing overhead: spans on vs off (concurrent serving)"
    ))
    assert row["spans_recorded"] > 0, "tracing run recorded no spans"
    assert row["spans_per_request"] >= 2.0, (
        "each served request should record at least its serving.process "
        "span and one decision-procedure child"
    )
    assert row["overhead"] <= MAX_TRACING_OVERHEAD, (
        f"tracing overhead {row['overhead']:.1%} exceeds the "
        f"{MAX_TRACING_OVERHEAD:.0%} budget"
    )
