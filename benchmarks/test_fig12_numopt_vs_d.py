"""Figure 12 — numOpt % as the number of parameterized predicates grows.

Paper: PCM2's optimizer overheads grow ~10% per added dimension
(beyond 50% at d=10), while SCR2 starts around 6% and grows ~5% per
dimension — SCR scales better with dimensionality.  At our reduced
sequence lengths PCM saturates sooner, but the orderings hold: SCR2
stays below PCM2 at every d and starts an order of magnitude lower.
"""

from conftest import run_once
from repro.harness.reporting import format_table

DIMS = (2, 4, 6, 8, 10)


def test_fig12_numopt_vs_dimensions(experiments, benchmark):
    rows = run_once(
        benchmark, lambda: experiments.numopt_vs_dimensions(dims=DIMS, m=600)
    )
    print()
    print(format_table(rows, title="Figure 12: numOpt % vs d"))

    series = {}
    for row in rows:
        series.setdefault(row["technique"], {})[row["d"]] = row["numopt_pct"]

    # At every dimensionality SCR2 needs fewer calls than PCM2.
    for d in DIMS:
        assert series["SCR2"][d] < series["PCM2"][d]
    # SCR2 starts low in low dimensions (paper: ~6%).
    assert series["SCR2"][2] < 15.0
    # PCM2 is already expensive at d=2 and saturates with d.
    assert series["PCM2"][2] > 2 * series["SCR2"][2]
    # Overheads grow with dimensionality for both techniques.
    assert series["SCR2"][10] > series["SCR2"][2]
    assert series["PCM2"][10] >= series["PCM2"][2]
    # The gap persists in high dimensions.
    assert series["SCR2"][10] <= 0.9 * series["PCM2"][10]
