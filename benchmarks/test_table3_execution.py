"""Table 3 (Appendix H.7) — real optimization + execution wall times.

Paper (500 TPC-DS-based instances): Optimize-Always pays 188s of
optimization; Optimize-Once executes worst (543s); SCR1.1 wins total
time (280s) with only 13 of 101 plans retained, ~40s ahead of the best
alternative.  We reproduce the ordering with actual wall-clock
optimization times (engine counters) and actual plan execution on the
synthetic TPC-DS data.
"""


from conftest import run_once
from repro.baselines import PCM, Ellipse, OptimizeAlways, OptimizeOnce, Ranges
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.executor.engine import PlanExecutor
from repro.harness.reporting import format_table
from repro.harness.runner import WorkloadRunner
from repro.workload.generator import instances_for_template
from repro.workload.templates import tpcds_templates

M = 300


def run_execution_experiment():
    runner = WorkloadRunner(db_scale=0.4)
    template = next(
        t for t in tpcds_templates() if t.name == "tpcds_q25_like"
    )
    db = runner.database(template.database)
    executor = PlanExecutor(db.data, template)
    instances = instances_for_template(
        template, M, seed=7, estimator=db.estimator
    )

    factories = {
        "OptAlways": OptimizeAlways,
        "OptOnce": OptimizeOnce,
        "Ellipse0.9": lambda e: Ellipse(e, delta=0.9),
        "Ellipse0.7": lambda e: Ellipse(e, delta=0.7),
        "SCR1.1": lambda e: SCR(e, lam=1.1),
        "SCR2": lambda e: SCR(e, lam=2.0),
        "PCM1.1": lambda e: PCM(e, lam=1.1),
        "Ranges": lambda e: Ranges(e, slack=0.01),
    }
    rows = []
    oracle = runner.oracle(template)
    for name, factory in factories.items():
        engine = EngineAPI(template, oracle._optimizer, db.estimator)
        technique = factory(engine)
        exec_seconds = 0.0
        exec_cost = 0.0  # optimizer-estimated cost of the chosen plans:
        # a noise-free proxy for execution work, used by the assertions
        # (wall-clock execution is reported but depends on machine load).
        for inst in instances:
            choice = technique.process(inst)
            assert choice.plan is not None
            exec_seconds += executor.execute(choice.plan, inst).wall_seconds
            exec_cost += oracle.plan_cost(
                choice.shrunken_memo, inst.selectivities
            )
        opt_seconds = (
            engine.counters.optimize.total_seconds
            + engine.counters.recost.total_seconds
            + engine.counters.selectivity.total_seconds
        )
        rows.append({
            "technique": name,
            "opt_s": opt_seconds,
            "exec_s": exec_seconds,
            "total_s": opt_seconds + exec_seconds,
            "exec_cost": exec_cost,
            "plans": max(technique.max_plans_cached, technique.plans_cached),
        })
    return rows


def test_table3_execution_experiment(experiments, benchmark):
    rows = run_once(benchmark, run_execution_experiment)
    print()
    print(format_table(rows, title=f"Table 3: execution experiment (m={M})",
                       float_format="{:.3f}"))

    by_name = {row["technique"]: row for row in rows}
    always = by_name["OptAlways"]
    once = by_name["OptOnce"]
    scr11 = by_name["SCR1.1"]
    scr2 = by_name["SCR2"]
    pcm = by_name["PCM1.1"]

    # Optimize-Always pays more optimization time than every technique
    # that actually reuses plans (PCM1.1 optimizes nearly as often, so
    # it may tie).  Wall-clock ratios here are CPU-bound and stable.
    for name in ("OptOnce", "Ellipse0.9", "Ellipse0.7", "Ranges", "SCR2"):
        assert by_name[name]["opt_s"] < always["opt_s"], name
    # Optimize-Once pays almost no optimization time...
    assert once["opt_s"] < 0.1 * always["opt_s"]
    # ...but executes the most work (estimated-cost proxy: noise-free).
    assert once["exec_cost"] >= max(r["exec_cost"] for r in rows) * 0.999
    # SCR saves the bulk of the optimization time vs Optimize-Always.
    # (The paper reports this for lambda=1.1; our synthetic cost model
    # varies faster with selectivity, so the tight bound keeps numOpt
    # high and the effect shows at lambda=2 — see EXPERIMENTS.md.)
    assert scr2["opt_s"] < 0.4 * always["opt_s"]
    assert scr2["opt_s"] < pcm["opt_s"]
    # SCR retains few plans; PCM stores every distinct plan it sees.
    assert scr2["plans"] <= scr11["plans"] <= pcm["plans"]
    # Execution quality stays close to Optimize-Always (within the
    # lambda=2 certificate) and clearly beats Optimize-Once.
    assert scr2["exec_cost"] < 2.0 * always["exec_cost"]
    assert scr2["exec_cost"] < once["exec_cost"]
