"""Figure 19 (Appendix H.4) — enforcing a plan-cache budget k on SCR2.

Paper: numOpt grows slowly under budgets of 10 and 5 (most workloads
fit in <=5 plans) and rises significantly only at k=2 — without ever
compromising the λ guarantee.
"""

from conftest import run_once
from repro.harness.reporting import format_table

BUDGETS = (None, 10, 5, 2)


def test_fig19_plan_budget(experiments, benchmark):
    rows = run_once(benchmark, lambda: experiments.plan_budget_sweep(BUDGETS))
    print()
    print(format_table(rows, title="Figure 19: numOpt % vs plan budget k"))

    by_k = {row["k"]: row for row in rows}
    unbounded = by_k["unbounded"]["numopt_mean"]
    # Moderate budgets barely hurt...
    assert by_k["10"]["numopt_mean"] <= unbounded * 1.5 + 1.0
    # ...k=2 hurts the most.
    assert by_k["2"]["numopt_mean"] >= by_k["10"]["numopt_mean"] - 1e-9
    # Budgets are actually enforced.
    for k in (10, 5, 2):
        assert by_k[str(k)]["numplans_mean"] <= k + 1e-9
    # The guarantee is not traded away: TC stays below lambda = 2.
    for row in rows:
        assert row["tc_mean"] < 2.0
