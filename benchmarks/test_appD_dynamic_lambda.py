"""Appendix D — dynamic (cost-dependent) λ.

Paper (TPC-DS Q25, 1000 instances, λ ∈ [1.1, 10]): versus static
λ=1.1, numPlans improved 148→96 and numOpt 502→310 while
TotalCostRatio rose only 1.03→1.08 — cheap instances tolerate loose
bounds, expensive ones keep tight ones.
"""

from conftest import run_once
from repro.harness.reporting import format_table
from repro.workload.templates import tpcds_templates


def test_appD_dynamic_lambda(experiments, benchmark):
    template = next(t for t in tpcds_templates() if t.name == "tpcds_q25_like")
    rows = run_once(
        benchmark,
        lambda: experiments.dynamic_lambda_experiment(
            template, m=400, lambda_min=1.1, lambda_max=10.0
        ),
    )
    print()
    print(format_table(rows, title="Appendix D: static vs dynamic lambda"))

    static = next(r for r in rows if r["mode"] == "static")
    dynamic = next(r for r in rows if r["mode"] == "dynamic")
    # Dynamic lambda reduces both overhead metrics...
    assert dynamic["numopt"] <= static["numopt"]
    assert dynamic["numplans"] <= static["numplans"]
    # ...at only a modest cost-quality price.
    assert dynamic["tc"] < static["tc"] + 0.5
    assert dynamic["tc"] < 2.0
