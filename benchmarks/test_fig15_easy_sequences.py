"""Figure 15 — sequences where Optimize-Once already achieves MSO < 2.

Paper: on workloads a single plan handles well, SCR recognizes the
simplicity — storing <2 plans on average and optimizing only ~1.7% of
instances — while other techniques still store tens of plans and make
10%+ optimizer calls.
"""

from conftest import run_once
from repro.harness.reporting import format_table


def test_fig15_easy_sequences(experiments, benchmark):
    rows = run_once(benchmark, experiments.easy_sequence_comparison)
    print()
    print(format_table(
        rows, title="Figure 15: sequences where OptOnce has MSO < 2"
    ))
    if not rows:
        # At tiny scale every sequence may be hard; the experiment code
        # path is still exercised (and asserted at larger scale).
        return

    by_name = {row["technique"]: row for row in rows}
    scr = by_name.get("SCR2")
    assert scr is not None
    # SCR stores very few plans on OptOnce-easy sequences...
    assert scr["numplans_mean"] <= 4.0
    # ...fewer than the non-trivial baselines.
    for other in ("PCM2", "Ellipse", "Density", "Ranges"):
        if other in by_name:
            assert scr["numplans_mean"] <= by_name[other]["numplans_mean"] + 1e-9
