"""Figure 11 — 4-d query: numOpt % falls as workload length grows.

Paper: on a 4-dimensional query with m from 1,000 to 10,000, SCR2's
numOpt improves from 6.5% to <1%, SCR1.1 approaches PCM2's quality
role, and PCM2 stays far above both.
"""

from conftest import run_once
from repro.harness.reporting import format_table
from repro.workload.templates import dimension_sweep_template

LENGTHS = (250, 500, 1000, 2000)


def test_fig11_numopt_vs_m_4d(experiments, benchmark):
    template = dimension_sweep_template(4)
    rows = run_once(
        benchmark,
        lambda: experiments.numopt_vs_m(template, lengths=LENGTHS),
    )
    print()
    print(format_table(rows, title="Figure 11: numOpt % vs m (4-d query)"))

    series = {}
    for row in rows:
        series.setdefault(row["technique"], {})[row["m"]] = row["numopt_pct"]

    for name in ("SCR2", "SCR1.1", "PCM2"):
        # Running numOpt % decreases as the workload lengthens.
        values = [series[name][m] for m in LENGTHS]
        assert values[-1] < values[0], f"{name}: {values}"
    # SCR2 ends far below PCM2.
    assert series["SCR2"][LENGTHS[-1]] < 0.5 * series["PCM2"][LENGTHS[-1]]
    # Larger lambda helps throughout.
    assert series["SCR2"][LENGTHS[-1]] <= series["SCR1.1"][LENGTHS[-1]]
