"""Figure 21 (Appendix H.6) — existing techniques augmented with Recost.

Paper: giving the heuristics an SCR-style redundancy check improves
their numPlans (and sometimes numOpt), but their MSO / TotalCostRatio
stay in the same bad range or get worse — the Recost feature only
brings overhead savings *with* guarantees when used as SCR uses it.
"""

from conftest import run_once
from repro.harness.reporting import format_table


def test_fig21_recost_augmented(experiments, benchmark):
    rows = run_once(benchmark, experiments.recost_augmented_baselines)
    print()
    print(format_table(rows, title="Figure 21: heuristics + Recost"))

    by_name = {row["technique"]: row for row in rows}
    for base in ("Ellipse", "Density", "Ranges"):
        plain = by_name[base]
        augmented = by_name[f"{base}+R"]
        # Redundancy check shrinks the plan cache...
        assert augmented["numplans_mean"] <= plain["numplans_mean"] + 1e-9
        # ...but does not repair the sub-optimality problem.
        assert augmented["mso_mean"] > 2.0 or plain["mso_mean"] <= 2.0
    # SCR2 remains the only bounded technique in the line-up.
    scr = by_name["SCR2"]
    assert scr["mso_mean"] <= 2.0 * 1.05
    assert all(
        scr["mso_mean"] <= by_name[f"{b}+R"]["mso_mean"] + 1e-9
        for b in ("Ellipse", "Density", "Ranges")
    )
