"""Chaos gate: sustained overload + seeded worker kills, zero regrets.

The fault-tolerance acceptance gate of the multi-process serving tier
(DESIGN.md §13).  One run, four assertions:

1. **Zero lost requests** — every submitted future resolves with a
   worker response even though seeded kills land mid-phase (the drain
   protocol: retried-on-peer or shed, never hung, and with spare ring
   peers nothing actually sheds as ``worker_lost``).
2. **Zero certified-guarantee violations** — every certified response
   ships its plan's recosted cost at the served sVector (worker-side
   verification), and this benchmark audits ``cost / optimal ≤ λ``
   against its *own* memoized oracle, independent of both the workers
   and the supervisor.
3. **Warm-start pays ≤20% of cold-start** — after recovery, replaying
   the full workload costs the snapshot-restored replacement at most
   20% of the optimizer calls a cold start paid for the same work.
4. **Merged exposition preserves exactly-one-outcome** — summing the
   supervisor-source ``repro_responses_total`` series of the merged
   Prometheus exposition reproduces the submitted count exactly,
   across all deaths and restarts.

Load is offered in bursts at well over the sustained service rate
(recorded and asserted ≥2×), with a kill injected between bursts —
"kills every few seconds" at this repo's usual scaled-down timings.

Artifacts (mirroring the ``BENCH_GETPLAN_JSON`` pattern):
``CLUSTER_CHAOS_JSON=1`` writes ``BENCH_cluster_chaos.json``;
``CLUSTER_CHAOS_EVENTS=<path>`` streams fault/phase events as JSONL.
"""

from __future__ import annotations

import json
import os
import platform
import re
import time
from pathlib import Path

import pytest

from repro.catalog.registry import get_database
from repro.cluster import ClusterSupervisor, ProcessFaultInjector, SupervisorPolicy
from repro.harness.oracle import Oracle
from repro.workload.generator import instances_for_template
from repro.workload.templates import tpch_templates

pytestmark = pytest.mark.cluster

LAM = 2.0
DB_SCALE = 0.3
DB_SEED = 42
WARM_M = 40          # instances per template in the cold phase
CHAOS_REPLAYS = 8    # workload replays offered during the chaos phase
BURSTS = 12
KILL_EVERY_BURSTS = 4
TEMPLATES = tpch_templates()[:2]

POLICY = SupervisorPolicy(
    heartbeat_timeout=0.8,
    restart_backoff_base=0.05,
    max_retries=2,
    drain_timeout=20.0,
)


class _Events:
    """JSONL event stream for the chaos run (optional artifact)."""

    def __init__(self) -> None:
        path = os.environ.get("CLUSTER_CHAOS_EVENTS")
        self._fh = open(path, "w", encoding="utf-8") if path else None
        self._t0 = time.monotonic()

    def emit(self, kind: str, **fields) -> None:
        if self._fh is None:
            return
        row = {"t": round(time.monotonic() - self._t0, 4), "event": kind}
        row.update(fields)
        self._fh.write(json.dumps(row, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()


CHAOS_JSON = Path(__file__).parents[1] / "BENCH_cluster_chaos.json"
CHAOS_SCHEMA = 2
MAX_CHAOS_RUNS = 20


def _append_chaos_trajectory(summary: dict) -> None:
    """Append this run under the shared v2 trajectory envelope.

    Earlier revisions wrote the summary as a bare object; those are
    migrated into a single tagged run so the history survives the
    format change.
    """
    doc = {
        "schema_version": CHAOS_SCHEMA,
        "benchmark": "cluster_chaos",
        "runs": [],
    }
    if CHAOS_JSON.exists():
        loaded = json.loads(CHAOS_JSON.read_text(encoding="utf-8"))
        if loaded.get("schema_version") == CHAOS_SCHEMA:
            doc = loaded
        elif isinstance(loaded, dict) and "submitted" in loaded:
            doc["runs"] = [{
                "timestamp": "1970-01-01T00:00:00Z",
                "meta": {"migrated_from": 1},
                "summary": loaded,
            }]
    doc["runs"].append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "templates": [t.name for t in TEMPLATES],
            "bursts": BURSTS,
        },
        "summary": summary,
    })
    doc["runs"] = doc["runs"][-MAX_CHAOS_RUNS:]
    CHAOS_JSON.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )


def _submit_replay(supervisor, streams, lo, hi):
    futures = []
    for i in range(lo, hi):
        for template in TEMPLATES:
            futures.append(supervisor.submit(
                template.name, streams[template.name][i].sv.values,
                sequence_id=i,
            ))
    return futures


def _await_all(futures, timeout=120.0):
    deadline = time.monotonic() + timeout
    responses = []
    for fut in futures:
        responses.append(fut.result(
            timeout=max(0.1, deadline - time.monotonic())
        ))
    return responses


def _wait_for(predicate, timeout=30.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def _fleet_optimizer_calls(supervisor):
    return {
        wid: (handle.incarnation, handle.optimizer_calls)
        for wid, handle in supervisor.workers.items()
    }


def test_chaos_gate(tmp_path):
    events = _Events()
    streams = {
        t.name: instances_for_template(t, WARM_M, seed=1) for t in TEMPLATES
    }
    oracles = {
        t.name: Oracle(get_database(t.database, scale=DB_SCALE, seed=DB_SEED), t)
        for t in TEMPLATES
    }
    supervisor = ClusterSupervisor(
        TEMPLATES, num_workers=3, snapshot_dir=str(tmp_path),
        policy=POLICY, lam=LAM, db_scale=DB_SCALE, db_seed=DB_SEED,
        heartbeat_interval=0.1, snapshot_interval=0.25, verify=True,
    )
    supervisor.start()
    injector = ProcessFaultInjector(supervisor, seed=11)
    all_responses = []
    summary = {}
    try:
        # -- Phase A: cold start --------------------------------------------
        t0 = time.monotonic()
        responses = _await_all(_submit_replay(supervisor, streams, 0, WARM_M))
        cold_seconds = time.monotonic() - t0
        all_responses.extend(responses)
        _wait_for(
            lambda: _fleet_sum(supervisor) > 0,
            what="cold optimizer calls to appear in heartbeats",
        )
        cold_calls = _fleet_optimizer_calls(supervisor)
        cold_ref = max(calls for _, calls in cold_calls.values())
        cold_total = sum(calls for _, calls in cold_calls.values())
        service_rate = len(responses) / cold_seconds
        events.emit("phase", name="cold", seconds=round(cold_seconds, 3),
                    requests=len(responses), optimizer_calls=cold_total)
        _wait_for(
            lambda: len(injector.store.published_templates()) == len(TEMPLATES),
            what="snapshots of every template",
        )

        # -- Phase B: sustained ≥2x load with seeded kills ------------------
        per_burst = max(1, WARM_M * CHAOS_REPLAYS // BURSTS)
        futures = []
        kills = []
        t0 = time.monotonic()
        burst_gap = 0.25
        for burst in range(BURSTS):
            if burst and burst % KILL_EVERY_BURSTS == 0:
                event = injector.inject("kill")
                kills.append(event)
                events.emit("fault", detail=event)
            lo = (burst * per_burst) % WARM_M
            for i in range(per_burst):
                idx = (lo + i) % WARM_M
                for template in TEMPLATES:
                    futures.append(supervisor.submit(
                        template.name, streams[template.name][idx].sv.values,
                        sequence_id=idx,
                    ))
            time.sleep(burst_gap)
        offered_seconds = time.monotonic() - t0
        offered_rate = len(futures) / offered_seconds
        responses = _await_all(futures)
        chaos_seconds = time.monotonic() - t0
        all_responses.extend(responses)
        served_rate = len(responses) / chaos_seconds
        events.emit("phase", name="chaos", seconds=round(chaos_seconds, 3),
                    requests=len(responses), kills=len(kills),
                    offered_rate=round(offered_rate, 1),
                    served_rate=round(served_rate, 1))

        # Gate 1: zero lost requests — every future resolved with a
        # worker response (no WorkerLostError, nothing hung).
        assert len(kills) >= 2, "chaos phase must actually kill workers"
        report = supervisor.cluster_report()
        assert report["worker_lost"] == 0
        assert report["resolved"] == report["submitted"]
        assert report["in_flight"] == 0

        # The overload witness: bursts arrive far above sustained service.
        burst_rate = per_burst * len(TEMPLATES) / max(1e-9, burst_gap)
        assert burst_rate >= 2 * service_rate, (
            f"offered burst rate {burst_rate:.0f}/s is not ≥2x the "
            f"sustained service rate {service_rate:.0f}/s"
        )

        # -- Phase C: recovery + warm-start accounting ----------------------
        _wait_for(
            lambda: all(
                h.state.value == "live" for h in supervisor.workers.values()
            ),
            what="every worker live again after the kills",
        )
        replaced = {
            wid: handle for wid, handle in supervisor.workers.items()
            if handle.restarts > 0
        }
        assert replaced, "at least one worker must have been restarted"
        for wid, handle in replaced.items():
            assert handle.warm_templates == len(TEMPLATES), (
                f"{wid} restarted cold: {handle.cold_templates} cold templates"
            )
        before = _fleet_optimizer_calls(supervisor)
        responses = _await_all(_submit_replay(supervisor, streams, 0, WARM_M))
        all_responses.extend(responses)
        _wait_for(
            lambda: _heartbeats_settled(supervisor),
            what="post-replay heartbeats",
        )
        after = _fleet_optimizer_calls(supervisor)
        warm_deltas = {}
        for wid in replaced:
            inc_before, calls_before = before[wid]
            inc_after, calls_after = after[wid]
            assert inc_before == inc_after, "chaos leaked into phase C"
            warm_deltas[wid] = calls_after - calls_before
        # Gate 3: the warm-started replacement re-serves the whole
        # workload with ≤20% of a cold start's optimizer calls.
        allowed = max(3.0, 0.2 * cold_ref)
        assert max(warm_deltas.values()) <= allowed, (
            f"warm replay cost {warm_deltas} optimizer calls; "
            f"cold reference was {cold_ref} (allowed {allowed:.1f})"
        )
        events.emit("phase", name="warm_replay", deltas=warm_deltas,
                    cold_reference=cold_ref)

        # Gate 2: zero certified λ-violations vs the independent oracle.
        checked, violations, worst = _audit_lambda_with_sv(
            all_responses, oracles, streams
        )
        assert checked > 0, "verification shipped no recosted costs"
        assert violations == 0, (
            f"{violations}/{checked} certified responses exceeded λ={LAM} "
            f"(worst ratio {worst:.3f})"
        )
        report = supervisor.cluster_report()
        assert report["supervisor_lambda_violations"] == 0
        assert report["worker_lambda_violations"] == 0

        # Gate 4: the merged exposition preserves exactly-one-outcome.
        text = supervisor.prometheus()
        accounted = _supervisor_responses_total(text)
        assert accounted == report["submitted"], (
            f"exposition accounts {accounted} responses, "
            f"submitted {report['submitted']}"
        )
        assert re.search(r'source="w\d+:\d+"', text), (
            "worker registries missing from the merged exposition"
        )

        summary = {
            "submitted": report["submitted"],
            "resolved": report["resolved"],
            "outcomes": report["outcomes"],
            "retries": report["retries"],
            "worker_lost": report["worker_lost"],
            "kills": kills,
            "faults_injected": list(injector.injected),
            "cold_optimizer_calls": cold_total,
            "cold_reference": cold_ref,
            "warm_replay_deltas": warm_deltas,
            "service_rate_cold": round(service_rate, 1),
            "offered_burst_rate": round(burst_rate, 1),
            "chaos_served_rate": round(served_rate, 1),
            "lambda_checked": checked,
            "lambda_violations": violations,
            "worst_ratio": round(worst, 4),
            "restarts": {
                wid: h.restarts for wid, h in supervisor.workers.items()
            },
        }
        events.emit("summary", **summary)
        print("\nchaos gate:", json.dumps(summary, indent=2, sort_keys=True))
    finally:
        supervisor.close()
        events.close()
    if summary and os.environ.get("CLUSTER_CHAOS_JSON"):
        _append_chaos_trajectory(summary)


def test_slo_burn_gate(tmp_path):
    """SLO burn-rate acceptance over a real spawned-worker cluster.

    Three wall-clock windows against one supervisor with overload
    protection and distributed tracing on:

    * **calm** — paced, cache-warm traffic: zero alerts fire;
    * **overload** — a flood of never-seen sVectors saturates the
      optimizer admission gate, so misses are served uncertified /
      shed and the certified-fraction SLO burns through its budget:
      the multi-window alert must fire (a seeded kill lands mid-flood
      so the window also covers retried-on-peer traffic);
    * **recovery** — paced warm traffic again: the short window cools
      and the alert clears without operator action.

    Windows are scaled to benchmark time (3 s / 0.75 s) the same way
    the cluster scales heartbeats; the semantics under test — fire on
    sustained burn, hold through noise, clear on recovery — are window-
    size-independent.  With ``CLUSTER_CHAOS_ARTIFACT_DIR`` set, writes
    the SLO report and a rendered trace tree of one retried request.
    """
    from repro.obs import (
        BurnWindow,
        build_tree,
        certified_fraction_objective,
        explain_trace,
        format_explanation,
        render_tree,
    )

    warm_m = 20
    flood_m = 200
    streams = {
        t.name: instances_for_template(t, warm_m, seed=1) for t in TEMPLATES
    }
    flood_streams = {
        t.name: instances_for_template(t, flood_m, seed=99) for t in TEMPLATES
    }
    # λ is deliberately tight: at the usual λ=2 the warm SCR cache
    # certifies nearly any fresh sVector without an optimizer call, so
    # no flood could ever pressure the admission gate.  At λ=1.05 fresh
    # points miss, and each miss pays the simulated 50 ms optimize —
    # the flood saturates the gate and misses degrade to uncertified.
    supervisor = ClusterSupervisor(
        TEMPLATES, num_workers=2, snapshot_dir=str(tmp_path),
        policy=POLICY, lam=1.05, db_scale=DB_SCALE, db_seed=DB_SEED,
        heartbeat_interval=0.1, snapshot_interval=0.25,
        overload=True, trace=True,
        optimize_seconds=0.05, recost_seconds=0.002,
    )
    windows = (
        BurnWindow("fast", long_s=3.0, short_s=0.75, burn_threshold=3.0),
    )
    supervisor.start()
    injector = ProcessFaultInjector(supervisor, seed=5)
    try:
        # Warm every template so calm traffic is all cache hits.
        _await_all(_submit_replay(supervisor, streams, 0, warm_m))
        supervisor.attach_slo(
            (certified_fraction_objective(
                target=0.9, windows=windows, source="supervisor",
            ),),
            min_interval_s=0.05,
        )
        slo = supervisor.obs.slo

        # -- calm window: paced warm traffic, zero false alerts -------------
        calm_deadline = time.monotonic() + 2 * windows[0].long_s
        idx = 0
        while time.monotonic() < calm_deadline:
            _await_all(_submit_replay(
                supervisor, streams, idx % warm_m, idx % warm_m + 1
            ))
            idx += 1
            time.sleep(0.05)
        assert slo.alerts_fired() == 0, (
            f"false alert during the calm window: {slo.report()}"
        )

        # -- overload window: flood of misses saturates the gate ------------
        futures = []
        killed = False
        flood_deadline = time.monotonic() + 4 * windows[0].long_s
        lo = 0
        while time.monotonic() < flood_deadline and lo < flood_m:
            for i in range(lo, min(lo + 40, flood_m)):
                for template in TEMPLATES:
                    futures.append(supervisor.submit(
                        template.name,
                        flood_streams[template.name][i].sv.values,
                        sequence_id=i,
                    ))
            lo += 40
            if lo >= 80 and not killed:
                injector.inject("kill")     # retries ride the same burn
                killed = True
            time.sleep(0.1)
        _wait_for(
            lambda: slo.active_alerts().get("certified_fraction", False),
            timeout=20.0,
            what="certified-fraction burn alert to fire under overload",
        )
        _await_all(futures)

        # -- recovery window: paced warm traffic clears the alert -----------
        recover_deadline = time.monotonic() + 20.0
        while time.monotonic() < recover_deadline:
            _await_all(_submit_replay(
                supervisor, streams, idx % warm_m, idx % warm_m + 1
            ))
            idx += 1
            if not slo.active_alerts()["certified_fraction"]:
                break
            time.sleep(0.05)
        assert not slo.active_alerts()["certified_fraction"], (
            "burn alert failed to clear after recovery"
        )
        kinds = [e.kind for e in slo.alert_events]
        assert kinds[0] == "fire" and "clear" in kinds
        assert slo.alerts_fired("certified_fraction") >= 1

        report = supervisor.cluster_report()
        assert "slo" in report
        # Alert state also rides the merged exposition for scrapers.
        assert "repro_slo_alerts_total" in supervisor.prometheus()

        # A retried-on-peer request from the flood, as one trace tree.
        retried_spans = None
        for fut in futures:
            spans = supervisor.trace_spans(fut.trace_id)
            if any(
                s.name == "cluster.dispatch"
                and s.attrs.get("outcome") == "worker_died"
                for s in spans
            ):
                retried_spans = spans
                break
        if retried_spans is not None:
            assert len(build_tree(retried_spans)) == 1

        artifact_dir = os.environ.get("CLUSTER_CHAOS_ARTIFACT_DIR")
        if artifact_dir:
            os.makedirs(artifact_dir, exist_ok=True)
            with open(
                os.path.join(artifact_dir, "chaos_slo_report.json"),
                "w", encoding="utf-8",
            ) as fh:
                json.dump(report["slo"], fh, indent=2, sort_keys=True)
            tree_spans = retried_spans or supervisor.trace_spans(
                futures[-1].trace_id
            )
            with open(
                os.path.join(artifact_dir, "chaos_trace_tree.txt"),
                "w", encoding="utf-8",
            ) as fh:
                fh.write(render_tree(tree_spans) + "\n\n")
                fh.write(format_explanation(explain_trace(tree_spans)) + "\n")
    finally:
        supervisor.close()


def _fleet_sum(supervisor) -> int:
    return sum(h.optimizer_calls for h in supervisor.workers.values())


def _heartbeats_settled(supervisor, within: float = 0.25) -> bool:
    """True once every live worker heartbeat is recent (stats current)."""
    now = supervisor.clock.monotonic()
    return all(
        now - h.last_heartbeat < within
        for h in supervisor.workers.values()
        if h.state.value == "live"
    )


def _audit_lambda_with_sv(responses, oracles, streams):
    """λ audit keyed by sequence_id: recover each response's sVector."""
    checked = violations = 0
    worst = 0.0
    for response in responses:
        if not (response.ok and response.certified):
            continue
        if response.plan_cost_at_sv is None or response.sequence_id < 0:
            continue
        sv = streams[response.template_name][response.sequence_id].sv
        optimal = oracles[response.template_name].optimal(sv).optimal_cost
        ratio = response.plan_cost_at_sv / optimal
        checked += 1
        worst = max(worst, ratio)
        if ratio > LAM * (1 + 1e-9):
            violations += 1
    return checked, violations, worst


def _supervisor_responses_total(text: str) -> int:
    """Sum the supervisor-source response counters in the exposition."""
    total = 0.0
    pattern = re.compile(
        r'^repro_responses_total\{([^}]*)\} ([0-9.]+)$', re.MULTILINE
    )
    for labels, value in pattern.findall(text):
        if 'source="supervisor"' in labels:
            total += float(value)
    return int(total)
