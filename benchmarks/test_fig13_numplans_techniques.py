"""Figure 13 — number of plans cached per technique (log-scale plot).

Paper: SCR2 stores almost an order of magnitude fewer plans than every
other multi-plan technique (95p values: 15 for SCR2, 93 for the best
heuristic, 219 for PCM).
"""

from conftest import run_once
from repro.harness.reporting import format_table


def test_fig13_numplans_per_technique(experiments, benchmark):
    rows = run_once(benchmark, experiments.technique_aggregates)
    cols = ["technique", "numplans_mean", "numplans_p95"]
    print()
    print(format_table(rows, columns=cols, title="Figure 13: numPlans"))

    by_name = {row["technique"]: row for row in rows}
    scr_plans = by_name["SCR2"]["numplans_mean"]
    for other in ("PCM2", "Ellipse", "Density", "Ranges"):
        assert scr_plans < by_name[other]["numplans_mean"], other
    # Substantially fewer than PCM (paper: ~15x at the 95th percentile).
    assert scr_plans < 0.5 * by_name["PCM2"]["numplans_mean"]
