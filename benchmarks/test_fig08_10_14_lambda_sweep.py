"""Figures 8, 10 & 14 — SCR metrics as the bound λ varies.

Paper: TotalCostRatio stays far below λ and the gap widens with λ
(Fig. 8; average TC ~1.1 at λ=2); numOpt falls sharply with λ
(Fig. 10; avg 12% at λ=1.1 to ~3% at λ=2); numPlans falls with λ
(Fig. 14).
"""

from conftest import run_once
from repro.harness.reporting import format_table

LAMBDAS = (1.1, 1.2, 1.5, 2.0)


def test_fig08_10_14_lambda_sweep(experiments, benchmark):
    rows = run_once(benchmark, lambda: experiments.lambda_sweep(LAMBDAS))
    print()
    print(format_table(rows, title="Figures 8/10/14: SCR lambda sweep"))

    # Figure 8: TC consistently below lambda, gap grows with lambda.
    for row in rows:
        assert row["tc_mean"] < row["lambda"]
    gaps = [row["lambda"] - row["tc_mean"] for row in rows]
    assert gaps[-1] > gaps[0]
    # Paper: average TC ~1.1 at lambda=2.
    assert rows[-1]["tc_mean"] < 1.3

    # Figure 10: numOpt decreases with lambda.
    numopts = [row["numopt_mean"] for row in rows]
    assert numopts[-1] < numopts[0]
    assert numopts[-1] < 0.6 * numopts[0]

    # Figure 14: numPlans decreases with lambda.
    plans = [row["numplans_mean"] for row in rows]
    assert plans[-1] < plans[0]
