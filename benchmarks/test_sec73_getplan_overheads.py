"""Section 7.3 — anatomy of getPlan overheads.

Paper (TPC-DS Q18, 4000 instances, λ=1.1): a naive getPlan would
recost up to 162 stored plans; the GL-pruning heuristic cuts that to 8
recost calls, and λ_r=√λ to at most 3 while retaining only 5 plans —
getPlan overheads stay far below an optimizer call.

This module also hosts the columnar hot-path micro-benchmark: the
single-thread probe throughput of ``check_impl="vectorized"`` against
the scalar reference over synthetic caches (m stored instances ×
d dimensions), gated at ≥5× for m ≥ 256, with the measured trajectory
appended to ``BENCH_getplan_hotpath.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from pathlib import Path

from conftest import run_once
from repro.core.get_plan import GetPlan
from repro.core.plan_cache import CachedPlan, InstanceEntry, PlanCache
from repro.harness.reporting import format_table
from repro.query.instance import SelectivityVector
from repro.workload.templates import tpcds_templates

BENCH_JSON = Path(__file__).parents[1] / "BENCH_getplan_hotpath.json"
BENCH_SCHEMA = 2
MAX_TRAJECTORY_RUNS = 20  # keep the checked-in trajectory bounded

CACHE_SIZES = (64, 256, 1024)
DIMENSIONS = (2, 6, 10)
PROBES = 300
GATE_M = 256          # the ISSUE gate: ≥5× at ≥256 cached instances
GATE_SPEEDUP = 5.0
GATE_SPEEDUP_HIGH_D = 4.0  # d=10 carries 5× the (B, N, d) temp traffic


def test_sec73_getplan_overheads(experiments, benchmark):
    template = next(t for t in tpcds_templates() if t.name == "tpcds_q18_like")
    rows = run_once(
        benchmark,
        lambda: experiments.getplan_overheads(template, m=500, lam=1.1),
    )
    print()
    print(format_table(rows, title="Section 7.3: getPlan overhead anatomy"))

    naive, pruned, full = rows
    # GL-pruning caps the worst-case recost calls per getPlan.
    assert pruned["max_recosts_per_getplan"] <= naive["max_recosts_per_getplan"]
    assert pruned["max_recosts_per_getplan"] <= 8
    # The redundancy check shrinks the plan cache further.
    assert full["numplans"] <= pruned["numplans"]
    # Quality is not sacrificed along the way.
    for row in rows:
        assert row["tc"] < 1.2


# -- columnar hot-path micro-benchmark ---------------------------------------


class _StubMemo:
    """Duck-typed ShrunkenMemo: probes never optimize, so a node count
    is all the cache bookkeeping ever reads."""

    node_count = 1


def _loguniform_sv(rng: random.Random, d: int) -> SelectivityVector:
    return SelectivityVector.from_sequence(
        [10 ** rng.uniform(-4, 0) for _ in range(d)]
    )


def _synthetic_cache(m: int, d: int, seed: int) -> PlanCache:
    """A cache of m stored instances behind one plan — the selectivity
    scan's cost does not depend on plan multiplicity."""
    cache = PlanCache()
    plan = CachedPlan(
        plan_id=0, signature="p0", plan=None, shrunken_memo=_StubMemo()
    )
    cache._plans[0] = plan
    cache._by_signature["p0"] = 0
    cache._next_plan_id = 1
    cache._mutated()
    rng = random.Random(seed)
    for i in range(m):
        cache.add_instance(
            InstanceEntry(
                sv=_loguniform_sv(rng, d),
                plan_id=0,
                optimal_cost=100.0 + i,
                suboptimality=1.0,
            )
        )
    return cache


def _never_recost(memo, point):  # max_recost=0 keeps the scan pure
    raise AssertionError("the hot-path benchmark must not recost")


def _probe_throughput(get_plan: GetPlan, points, batched: bool) -> float:
    """Probes per second over one warmed, timed pass.

    ``lam`` just above 1 makes every probe a full miss-scan — the
    worst case the columnar rewrite targets — and ``max_recost=0``
    confines the measurement to the selectivity phase.
    """
    if batched:
        get_plan.probe_batch(points[:30], _never_recost, max_recost=0)
        start = time.perf_counter()
        get_plan.probe_batch(points, _never_recost, max_recost=0)
    else:
        for point in points[:30]:
            get_plan.probe(point, _never_recost, max_recost=0)
        start = time.perf_counter()
        for point in points:
            get_plan.probe(point, _never_recost, max_recost=0)
    return len(points) / (time.perf_counter() - start)


def _measure_hotpath() -> list[dict]:
    results = []
    for m in CACHE_SIZES:
        for d in DIMENSIONS:
            cache = _synthetic_cache(m, d, seed=5)
            rng = random.Random(99)
            points = [_loguniform_sv(rng, d) for _ in range(PROBES)]
            row = {"m": m, "d": d}
            for impl in ("scalar", "vectorized"):
                gp = GetPlan(cache=cache, lam=1.0001, check_impl=impl)
                row[f"{impl}_probes_per_s"] = round(
                    _probe_throughput(gp, points, batched=False), 1
                )
            gp = GetPlan(cache=cache, lam=1.0001, check_impl="vectorized")
            row["batch_probes_per_s"] = round(
                _probe_throughput(gp, points, batched=True), 1
            )
            row["speedup"] = round(
                row["vectorized_probes_per_s"] / row["scalar_probes_per_s"], 2
            )
            results.append(row)
    return results


def _run_metadata() -> dict:
    """Per-run provenance header (schema v2): enough to explain a perf
    step in the trajectory without re-running the machine it came from."""
    return {
        "probes": PROBES,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _migrate_v1(doc: dict) -> dict:
    """Lift a schema-1 trajectory into the v2 envelope in place.

    v1 runs carried ``probes`` beside the results; v2 folds it into the
    ``meta`` header (tagged so a migrated run is distinguishable from a
    natively-v2 one with a richer header).
    """
    return {
        "schema_version": BENCH_SCHEMA,
        "benchmark": "getplan_hotpath",
        "runs": [
            {
                "timestamp": run["timestamp"],
                "meta": {"probes": run.get("probes"), "migrated_from": 1},
                "results": run["results"],
            }
            for run in doc.get("runs", [])
        ],
    }


def _append_trajectory(results: list[dict]) -> None:
    """Append this run to the checked-in perf trajectory (schema v2)."""
    doc = {
        "schema_version": BENCH_SCHEMA,
        "benchmark": "getplan_hotpath",
        "runs": [],
    }
    if BENCH_JSON.exists():
        loaded = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        if loaded.get("schema_version") == BENCH_SCHEMA:
            doc = loaded
        elif loaded.get("schema") == 1:
            doc = _migrate_v1(loaded)
    doc["runs"].append(
        {
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "meta": _run_metadata(),
            "results": results,
        }
    )
    doc["runs"] = doc["runs"][-MAX_TRAJECTORY_RUNS:]
    BENCH_JSON.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_getplan_hotpath_vectorized_speedup():
    """Gate: the columnar selectivity phase must beat the scalar scan
    ≥5× single-threaded once ≥256 instances are cached (≥4× at d=10,
    where the (B, N, d) intermediate dominates).  Set
    ``BENCH_GETPLAN_JSON=1`` to also append the run to the trajectory
    file (CI does; local runs stay read-only by default).
    """
    results = _measure_hotpath()
    print()
    print(format_table(results, title="Columnar getPlan hot path"))
    if os.environ.get("BENCH_GETPLAN_JSON"):
        _append_trajectory(results)
        print(f"appended trajectory run to {BENCH_JSON}")
    for row in results:
        if row["m"] < GATE_M:
            continue
        floor = GATE_SPEEDUP_HIGH_D if row["d"] >= 10 else GATE_SPEEDUP
        assert row["speedup"] >= floor, (
            f"vectorized probe throughput at m={row['m']} d={row['d']} is "
            f"only {row['speedup']}x the scalar scan (gate {floor}x)"
        )
        # The batched pass must at least keep pace with per-probe
        # vectorized dispatch (shared budget vector, chunked kernels).
        assert row["batch_probes_per_s"] >= 0.5 * row["vectorized_probes_per_s"]


def test_bench_trajectory_file_is_well_formed():
    """The checked-in trajectory is part of the repo contract."""
    from check_trajectory import check_regressions, validate_document

    assert BENCH_JSON.exists(), (
        f"missing {BENCH_JSON}; run "
        "`BENCH_GETPLAN_JSON=1 PYTHONPATH=src python -m pytest -q -s "
        "benchmarks/test_sec73_getplan_overheads.py -k hotpath`"
    )
    doc = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    assert validate_document(doc, str(BENCH_JSON)) == []
    assert check_regressions(doc, str(BENCH_JSON)) == []
    assert doc["benchmark"] == "getplan_hotpath"
    for run in doc["runs"]:
        for row in run["results"]:
            assert row["m"] in CACHE_SIZES and row["d"] in DIMENSIONS
    latest = doc["runs"][-1]["results"]
    gated = [r for r in latest if r["m"] >= GATE_M and r["d"] < 10]
    assert gated and all(r["speedup"] >= GATE_SPEEDUP for r in gated), (
        "checked-in trajectory's latest run no longer clears the 5x gate"
    )
