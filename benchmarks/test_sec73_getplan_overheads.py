"""Section 7.3 — anatomy of getPlan overheads.

Paper (TPC-DS Q18, 4000 instances, λ=1.1): a naive getPlan would
recost up to 162 stored plans; the GL-pruning heuristic cuts that to 8
recost calls, and λ_r=√λ to at most 3 while retaining only 5 plans —
getPlan overheads stay far below an optimizer call.
"""

from conftest import run_once
from repro.harness.reporting import format_table
from repro.workload.templates import tpcds_templates


def test_sec73_getplan_overheads(experiments, benchmark):
    template = next(t for t in tpcds_templates() if t.name == "tpcds_q18_like")
    rows = run_once(
        benchmark,
        lambda: experiments.getplan_overheads(template, m=500, lam=1.1),
    )
    print()
    print(format_table(rows, title="Section 7.3: getPlan overhead anatomy"))

    naive, pruned, full = rows
    # GL-pruning caps the worst-case recost calls per getPlan.
    assert pruned["max_recosts_per_getplan"] <= naive["max_recosts_per_getplan"]
    assert pruned["max_recosts_per_getplan"] <= 8
    # The redundancy check shrinks the plan cache further.
    assert full["numplans"] <= pruned["numplans"]
    # Quality is not sacrificed along the way.
    for row in rows:
        assert row["tc"] < 1.2
