"""Seeded drift gate: injected cost-model shift must be caught fast.

The calibration observatory's core promise (DESIGN.md §15): a calm
workload never alarms, and a sustained cost-model shift — injected
here by scaling every engine cost estimate by 1.6× mid-stream — is
detected within a bounded number of post-shift requests, across
multiple workload seeds.  The recost feed sees the shift because
anchors stored *before* it keep their stale costs, so every recost
comparison moves by ~ln 1.6 until misses re-anchor the cache; the
detection window must land inside that self-healing horizon.

After detection the budgeted recost sweep must repair the cache (mean
correction a sizable fraction of ln 1.6), clear the alarm, and the
post-sweep traffic must grade A again — the full detect→repair→verify
loop on a real TPC-H-style template, not the unit tests' toy schema.
"""

from __future__ import annotations

import math

from conftest import run_once
from repro import Database, tpch_schema
from repro.core.scr import SCR
from repro.engine.faults import DriftingCostEngine
from repro.harness.reporting import format_table
from repro.obs import Observability
from repro.workload.generator import instances_for_template
from repro.workload.templates import tpch_templates

LAM = 2.0
DRIFT_FACTOR = 1.6
TEMPLATE = "tpch_shipping_priority"
#: Independent workload seeds: the gate must not depend on one lucky
#: parameter ordering.
SEEDS = (11, 23, 42)
#: Calm phase long enough to warm the block detector (warm=16 blocks
#: of 25 recost samples) with headroom across seeds.
CALM_REQUESTS = 1200
#: Post-shift detection bound (requests).  Misses re-anchor the cache
#: under the shifted model, so a detector that needs more traffic than
#: this is watching the drift evaporate instead of catching it.
DETECTION_BOUND = 400
SWEEP_BUDGET = 300
VERIFY_REQUESTS = 300


def _drift_run(seed: int) -> dict:
    template = next(t for t in tpch_templates() if t.name == TEMPLATE)
    db = Database.create(tpch_schema(scale=0.2), seed=3)
    obs = Observability()
    engine = DriftingCostEngine(db.engine(template))
    scr = SCR(engine, lam=LAM, obs=obs)

    for q in instances_for_template(template, CALM_REQUESTS, seed=seed):
        scr.process(q)
    calm_alarm = bool(scr.calibration.alarms["calibration"])
    calm_samples = scr.calibration.score()["feeds"]["recost"]["samples"]

    engine.set_factor(DRIFT_FACTOR)
    detected_at = None
    drifted = instances_for_template(
        template, DETECTION_BOUND, seed=seed + 1000
    )
    for i, q in enumerate(drifted):
        scr.process(q)
        if scr.calibration.alarms["calibration"]:
            detected_at = i + 1
            break

    events = [
        e for e in obs.calibration.events
        if e.signal == "calibration" and e.template == template.name
    ]
    sweep = scr.recalibrate(budget=SWEEP_BUDGET)

    for q in instances_for_template(
        template, VERIFY_REQUESTS, seed=seed + 2000
    ):
        scr.process(q)

    return {
        "seed": seed,
        "calm_samples": calm_samples,
        "calm_alarm": calm_alarm,
        "detected_at": detected_at,
        "drift_events": len(events),
        "swept": sweep.refreshed,
        "sweep_calls": sweep.recost_calls,
        "mean_correction": round(sweep.mean_correction, 3),
        "post_alarm": bool(scr.calibration.alarms["calibration"]),
        "post_grade": scr.calibration.score()["grade"],
    }


def test_seeded_drift_gate(benchmark):
    rows = run_once(
        benchmark, lambda: [_drift_run(seed) for seed in SEEDS]
    )
    print()
    print(format_table(
        rows, title=f"Drift gate: {DRIFT_FACTOR}x shift on {TEMPLATE}"
    ))
    for row in rows:
        seed = row["seed"]
        # Calm traffic warmed the detector without a false alarm.
        assert row["calm_samples"] >= 425, (
            f"seed {seed}: calm phase produced only {row['calm_samples']} "
            "recost samples — the detector never armed"
        )
        assert not row["calm_alarm"], f"seed {seed}: false alarm while calm"
        # The shift was caught inside the bound, as a typed event.
        assert row["detected_at"] is not None, (
            f"seed {seed}: {DRIFT_FACTOR}x drift never detected within "
            f"{DETECTION_BOUND} requests"
        )
        assert row["drift_events"] >= 1
        # The budgeted sweep repaired the cache and cleared the alarm.
        assert 0 < row["sweep_calls"] <= SWEEP_BUDGET
        assert row["swept"] > 0
        assert 0.05 < row["mean_correction"] < math.log(DRIFT_FACTOR) + 0.05
        assert not row["post_alarm"], (
            f"seed {seed}: alarm re-fired on calibrated post-sweep traffic"
        )
        assert row["post_grade"] == "A", (
            f"seed {seed}: post-sweep grade {row['post_grade']} != A"
        )
