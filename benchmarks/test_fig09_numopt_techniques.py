"""Figure 9 — optimizer-call fraction (numOpt %) per technique.

Paper: PCM2's overheads can be very high on adversarial orderings;
SCR2 is significantly better than most techniques and comparable to
the best heuristic (Ranges): SCR2 95p 13.9% vs Ranges 10.9%, averages
3.7% vs 3.2%, while PCM averages >30%.
"""

from conftest import run_once
from repro.harness.reporting import format_table


def test_fig09_numopt_per_technique(experiments, benchmark):
    rows = run_once(benchmark, experiments.technique_aggregates)
    cols = ["technique", "numopt_mean", "numopt_p95"]
    print()
    print(format_table(rows, columns=cols, title="Figure 9: numOpt %"))

    by_name = {row["technique"]: row for row in rows}
    scr = by_name["SCR2"]
    pcm = by_name["PCM2"]
    # SCR needs far fewer optimizer calls than PCM...
    assert scr["numopt_mean"] < 0.5 * pcm["numopt_mean"]
    # ...and is in the same league as the best heuristic.
    best_heuristic = min(
        by_name[name]["numopt_mean"] for name in ("Ellipse", "Density", "Ranges")
    )
    assert scr["numopt_mean"] < 3.0 * best_heuristic
