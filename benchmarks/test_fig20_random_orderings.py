"""Figure 20 (Appendix H.5) — overheads restricted to random orderings.

Paper: most techniques look much better on random-only orderings (PCM2
95p falls from 81% to 39%) while SCR2 performs similarly across all
orderings — its advantage is not an artifact of adversarial orders.
"""

from conftest import run_once
from repro.harness.reporting import format_table


def test_fig20_random_ordering_only(experiments, benchmark):
    random_rows = run_once(benchmark, experiments.random_ordering_overheads)
    all_rows = experiments.technique_aggregates()
    print()
    print(format_table(random_rows,
                       title="Figure 20: numOpt % (random orderings only)"))

    rand = {row["technique"]: row for row in random_rows}
    full = {row["technique"]: row for row in all_rows}

    # PCM benefits notably from dropping adversarial orderings.
    assert rand["PCM2"]["numopt_mean"] <= full["PCM2"]["numopt_mean"] + 1e-9
    # SCR2 is ordering-robust: random-only within a modest factor of all-orderings.
    scr_all = full["SCR2"]["numopt_mean"]
    scr_rand = rand["SCR2"]["numopt_mean"]
    assert abs(scr_all - scr_rand) <= max(10.0, 0.5 * scr_all)
    # SCR2 still beats PCM2 with random-only evaluation.
    assert scr_rand < rand["PCM2"]["numopt_mean"]
