"""Figure 1 / Section 3 — the example-workload comparison.

The paper's running example: a 2-dimensional query processed by every
technique; SCR needs 6 optimizer calls where PCM needs 12 (of 13) and
the best heuristic 8, and SCR avoids the heuristics' sub-optimal
inferences.  We reproduce the *comparison* on a generated 2-d workload
of the same flavour (13 instances drawn around several plan regions)
and also emit the λ-optimal inference-region geometry the figure draws.
"""

from conftest import run_once
from repro.baselines import Density, Ellipse, PCM, Ranges
from repro.core.regions import SelectivityRegion
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.harness.reporting import format_table
from repro.harness.runner import WorkloadRunner
from repro.workload.generator import instances_for_template
from repro.workload.templates import tpch_templates


def run_example():
    runner = WorkloadRunner(db_scale=0.4)
    template = next(t for t in tpch_templates() if t.dimensions == 2)
    db = runner.database(template.database)
    instances = instances_for_template(template, 13, seed=16)

    rows = []
    for name, factory in (
        ("SCR2", lambda e: SCR(e, lam=2.0)),
        ("PCM2", lambda e: PCM(e, lam=2.0)),
        ("Ellipse", lambda e: Ellipse(e, delta=0.9)),
        ("Density", lambda e: Density(e)),
        ("Ranges", lambda e: Ranges(e, slack=0.01)),
    ):
        oracle = runner.oracle(template)
        engine = EngineAPI(template, oracle._optimizer, db.estimator)
        technique = factory(engine)
        mso = 1.0
        for inst in instances:
            choice = technique.process(inst)
            truth = oracle.optimal(inst.selectivities)
            so = (
                oracle.plan_cost(choice.shrunken_memo, inst.selectivities)
                / truth.optimal_cost
            )
            mso = max(mso, so)
        rows.append({
            "technique": name,
            "optimizer_calls": technique.optimizer_calls,
            "plans": max(technique.plans_cached, technique.max_plans_cached),
            "mso": mso,
        })
    return rows


def test_fig01_example_workload(experiments, benchmark):
    rows = run_once(benchmark, run_example)
    print()
    print(format_table(rows, title="Figure 1: 13-instance example workload"))

    by_name = {row["technique"]: row for row in rows}
    # SCR saves calls relative to PCM on the short sequence.
    assert by_name["SCR2"]["optimizer_calls"] <= by_name["PCM2"]["optimizer_calls"]
    # And keeps the guarantee while doing so.
    assert by_name["SCR2"]["mso"] <= 2.0 * 1.02


def test_fig01_region_geometry(benchmark):
    """The inference regions the figure draws: selectivity-based regions
    have the line/hyperbola shape with the closed-form area."""
    from repro.query.instance import SelectivityVector

    def build():
        anchor = SelectivityVector.of(0.05, 0.1)
        region = SelectivityRegion(anchor, budget=2.0)
        return region.boundary_2d(points_per_arc=32), region.area_2d()

    boundary, area = run_once(benchmark, build)
    assert len(boundary) == 4 * 32
    assert area > 0
    print(f"\nFigure 1 region: anchor (0.05, 0.1), lambda=2 -> area {area:.6f}")
