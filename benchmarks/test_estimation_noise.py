"""Acceptance gate: SCR's guarantees under selectivity-estimation noise.

The paper's framework takes the engine's selectivity estimates as
ground truth (§2: costs are optimizer-estimated).  In practice the
sVector itself is estimated from histograms and carries error.  This
benchmark injects seeded multiplicative noise into the sVector the
technique sees (the oracle keeps the true values) and measures, per
served response, whether the *claim the certificate actually made* was
violated against the true-selectivity optimum:

* point mode claims ``SubOpt ≤ λ`` conditional on the estimate being
  right — under noise those claims break (the motivating failure);
* robust mode claims ``SubOpt ≤ max(λ, certified_bound)`` for every
  sVector inside the honest noise band — those claims must **never**
  break while the band contains the truth (DESIGN.md §11).

The assertions are the uncertainty model's CI gate: zero robust-mode
violations at noise ≤ 0.3, a nonzero point-mode baseline at 0.3 (the
problem is real), and robust-mode optimizer calls within 2× of point
mode (the price of robustness is bounded).  A JSON report is written
for the workflow's artifact upload.
"""

import json
import os

from conftest import run_once
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.engine.faults import NoisyEngine
from repro.harness.reporting import format_table
from repro.harness.runner import WorkloadRunner
from repro.obs import Observability
from repro.serving.manager import ConcurrentPQOManager
from repro.workload.generator import instances_for_template
from repro.workload.templates import tpch_templates

M = 300
#: Tight bound: the toy TPC-H plan space rarely strays far from optimal,
#: so a loose λ would mask estimation error entirely — at 1.1 the
#: point-mode claims demonstrably break under noise while the robust
#: corner checks hold, which is exactly what the gate must separate.
LAM = 1.1
NOISE_LEVELS = (0.0, 0.1, 0.3, 0.6)
MODES = ("point", "robust")
NOISE_SEED = 5
#: Slack for oracle recosts of a plan the optimizer itself produced.
COST_RTOL = 1e-9

REPORT_PATH = os.environ.get(
    "NOISE_REPORT_PATH",
    os.path.join(os.path.dirname(__file__), "out", "estimation_noise.json"),
)


def _claim(choice) -> float:
    """The sub-optimality the response's certificate actually promised.

    Exact certificates claim λ (they presume perfect estimates); robust
    and probabilistic certificates claim their corner-valid bound, which
    for a fresh optimization may honestly exceed λ.
    """
    if choice.certificate == "exact":
        return LAM
    bound = choice.certified_bound if choice.certified_bound is not None else LAM
    return max(LAM, bound)


def run_noise_sweep():
    runner = WorkloadRunner(db_scale=0.4)
    template = tpch_templates()[0]
    db = runner.database(template.database)
    oracle = runner.oracle(template)
    instances = instances_for_template(template, M, seed=97)

    rows = []
    for mode in MODES:
        for noise in NOISE_LEVELS:
            base = EngineAPI(template, oracle._optimizer, db.estimator)
            engine = NoisyEngine(base, noise=noise, seed=NOISE_SEED)
            scr = SCR(engine, lam=LAM, check_mode=mode)
            violations = 0
            certified = 0
            worst = 1.0
            chosen_total = optimal_total = 0.0
            for inst in instances:
                choice = scr.process(inst)
                truth = oracle.optimal(inst.selectivities)  # true sVector
                if choice.plan_signature == truth.plan_signature:
                    cost = truth.optimal_cost
                else:
                    cost = oracle.plan_cost(
                        choice.shrunken_memo, inst.selectivities
                    )
                true_so = cost / truth.optimal_cost
                worst = max(worst, true_so)
                chosen_total += cost
                optimal_total += truth.optimal_cost
                if choice.certified:
                    certified += 1
                    if true_so > _claim(choice) * (1.0 + COST_RTOL):
                        violations += 1
            rows.append({
                "mode": mode,
                "noise": noise,
                "violations": violations,
                "certified": certified,
                "mso_true": worst,
                "tc_true": chosen_total / optimal_total,
                "numopt_pct": 100.0 * scr.optimizer_calls / M,
                "plans": scr.max_plans_cached,
            })
    return rows


def run_serving_accounting(noise: float = 0.3):
    """Robust serving sub-run: exactly-one-certificate accounting and a
    clean live audit trail under noise."""
    runner = WorkloadRunner(db_scale=0.4)
    template = tpch_templates()[0]
    db = runner.database(template.database)
    instances = instances_for_template(template, M // 3, seed=101)
    obs = Observability()
    with ConcurrentPQOManager(
        database=db,
        check_mode="robust",
        obs=obs,
        engine_wrapper=lambda e: NoisyEngine(e, noise=noise, seed=NOISE_SEED),
    ) as manager:
        manager.register(template, lam=LAM)
        for inst in instances:
            manager.process(inst)
        stats = manager.shard(template.name).stats
    return {
        "responses": len(instances),
        "certificates": obs.audit.certificate_totals(),
        "stat_certificates": dict(stats.certificate_counts),
        "lambda_violations": obs.audit.total_violations,
    }


def _write_report(rows, serving):
    os.makedirs(os.path.dirname(REPORT_PATH), exist_ok=True)
    with open(REPORT_PATH, "w") as fh:
        json.dump({"sweep": rows, "serving": serving}, fh, indent=2)


def test_estimation_noise_gate(experiments, benchmark):
    rows = run_once(benchmark, run_noise_sweep)
    serving = run_serving_accounting()
    _write_report(rows, serving)
    print()
    print(format_table(
        rows, title="Gate: point vs robust checks under sVector noise"
    ))

    by_key = {(row["mode"], row["noise"]): row for row in rows}

    # Noise-free, both modes: the λ-guarantee holds against the true
    # optimum and robust mode degenerates to point mode exactly
    # (zero-width boxes), costing nothing.
    for mode in MODES:
        clean = by_key[(mode, 0.0)]
        assert clean["violations"] == 0
        assert clean["mso_true"] <= LAM * 1.01
    assert (
        by_key[("robust", 0.0)]["numopt_pct"]
        == by_key[("point", 0.0)]["numopt_pct"]
    )

    # The gate: robust certificates are corner-valid, and the honest
    # noise band always contains the true sVector, so no certified
    # response may breach its claim at any gated noise level.
    for noise in (0.1, 0.3):
        assert by_key[("robust", noise)]["violations"] == 0, (
            f"robust certificate broken at noise {noise}"
        )

    # The baseline: point-mode "exact" claims do break under moderate
    # noise — the failure the robust mode exists to close.
    assert by_key[("point", 0.3)]["violations"] > 0

    # The price: robustness converts some reuse into optimizer calls,
    # but stays within 2x of point mode at every noise level.
    for noise in NOISE_LEVELS:
        point_opt = by_key[("point", noise)]["numopt_pct"]
        robust_opt = by_key[("robust", noise)]["numopt_pct"]
        assert robust_opt <= 2.0 * max(point_opt, 1.0), (
            f"robust optimizer overhead above 2x at noise {noise}"
        )

    # Aggregate quality stays sane even under heavy noise (heuristics
    # reach MSO 10-800 noise-free).
    assert by_key[("point", 0.6)]["mso_true"] < 10.0
    assert by_key[("robust", 0.3)]["tc_true"] < 1.5

    # Serving accounting: exactly one certificate kind per response,
    # booked identically in the shard stats and the audit registry, and
    # the live λ-violation trail stays clean under robust checks.
    totals = serving["certificates"]
    assert sum(totals.values()) == serving["responses"]
    assert sum(serving["stat_certificates"].values()) == serving["responses"]
    assert serving["lambda_violations"] == 0
