"""Sensitivity benchmark: SCR under selectivity-estimation noise.

The paper's framework takes the engine's selectivity estimates as
ground truth (§2: costs are optimizer-estimated).  In practice the
sVector itself is estimated from histograms and carries error.  This
benchmark injects multiplicative noise into the sVector the technique
sees (the oracle keeps the true values) and measures how gracefully
SCR's guarantee degrades — a robustness question the paper leaves open.

Expected shape: MSO (measured against the *true*-selectivity optimum)
degrades smoothly with the noise level and stays far below the
heuristics' noise-free MSO, because the selectivity/cost checks are
conservative and noise mostly converts reuse into optimizer calls.
"""

import numpy as np

from conftest import run_once
from repro.core.scr import SCR
from repro.engine.api import EngineAPI
from repro.harness.reporting import format_table
from repro.harness.runner import WorkloadRunner
from repro.query.instance import SelectivityVector
from repro.workload.generator import instances_for_template
from repro.workload.templates import tpch_templates

M = 300
NOISE_LEVELS = (0.0, 0.1, 0.3, 0.6)


class NoisyEngine(EngineAPI):
    """Engine whose sVector API returns perturbed selectivities.

    Noise is multiplicative log-normal-ish: ``s' = clamp(s * exp(eps))``
    with ``eps ~ U(-noise, +noise)`` — the standard shape of histogram
    estimation error.
    """

    def __init__(self, base: EngineAPI, noise: float, seed: int = 0) -> None:
        super().__init__(base.template, base.optimizer, base.estimator)
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def selectivity_vector(self, instance):
        sv = super().selectivity_vector(instance)
        if self.noise <= 0:
            return sv
        eps = self._rng.uniform(-self.noise, self.noise, size=len(sv))
        noisy = [
            min(1.0, max(1e-6, s * float(np.exp(e))))
            for s, e in zip(sv, eps)
        ]
        return SelectivityVector.from_sequence(noisy)


def run_noise_sweep():
    runner = WorkloadRunner(db_scale=0.4)
    template = tpch_templates()[0]
    db = runner.database(template.database)
    oracle = runner.oracle(template)
    instances = instances_for_template(template, M, seed=97)

    rows = []
    for noise in NOISE_LEVELS:
        base = EngineAPI(template, oracle._optimizer, db.estimator)
        engine = NoisyEngine(base, noise=noise, seed=5)
        scr = SCR(engine, lam=2.0)
        worst = 1.0
        chosen_total = optimal_total = 0.0
        for inst in instances:
            choice = scr.process(inst)
            truth = oracle.optimal(inst.selectivities)  # true sVector
            cost = oracle.plan_cost(choice.shrunken_memo, inst.selectivities)
            worst = max(worst, cost / truth.optimal_cost)
            chosen_total += cost
            optimal_total += truth.optimal_cost
        rows.append({
            "noise": noise,
            "mso_true": worst,
            "tc_true": chosen_total / optimal_total,
            "numopt_pct": 100.0 * scr.optimizer_calls / M,
            "plans": scr.max_plans_cached,
        })
    return rows


def test_estimation_noise_robustness(experiments, benchmark):
    rows = run_once(benchmark, run_noise_sweep)
    print()
    print(format_table(
        rows, title="Sensitivity: SCR2 under sVector estimation noise"
    ))

    by_noise = {row["noise"]: row for row in rows}
    clean = by_noise[0.0]
    # Noise-free: the guarantee holds against the true optimum.
    assert clean["mso_true"] <= 2.0 * 1.01
    # Degradation is graceful: moderate noise keeps aggregate quality
    # close to optimal even when individual instances breach the bound.
    assert by_noise[0.3]["tc_true"] < 1.5
    # Heavy noise costs quality but SCR never collapses to
    # heuristic-grade MSO levels (heuristics reach 10-800 noise-free).
    assert by_noise[0.6]["mso_true"] < 10.0
