"""Appendix E — choosing the redundancy threshold λ_r.

Paper (TPC-DS Q18, 4000 instances, λ=1.1): λ_r=1 (store everything)
keeps 77 plans with up to 8 recost calls per getPlan; λ_r=1.01 drops
to 14 plans / 5 calls; λ_r=√λ to 5 plans / 3 calls with TC only
1.03→1.04; pushing λ_r higher stops helping and raises numOpt (the
shrinking λ/S budgets close selectivity regions).
"""

from conftest import run_once
from repro.harness.reporting import format_table
from repro.workload.templates import tpcds_templates

# None encodes the sqrt(lambda) rule.
LAMBDA_RS = (1.0, 1.02, None, 1.09)


def test_appE_lambda_r_sweep(experiments, benchmark):
    template = next(t for t in tpcds_templates() if t.name == "tpcds_q18_like")
    rows = run_once(
        benchmark,
        lambda: experiments.lambda_r_sweep(
            template, m=500, lam=1.1, lambda_rs=LAMBDA_RS
        ),
    )
    print()
    print(format_table(rows, title="Appendix E: lambda_r sweep (lambda=1.1)"))

    by_label = {row["lambda_r"]: row for row in rows}
    keep_all = by_label["1"]
    sqrt_rule = by_label["sqrt"]
    # The sqrt rule retains (weakly) fewer plans than storing everything...
    assert sqrt_rule["numplans"] <= keep_all["numplans"]
    # ...without a meaningful TotalCostRatio price.
    assert sqrt_rule["tc"] <= keep_all["tc"] + 0.1
    # All configurations respect the lambda bound in aggregate.
    for row in rows:
        assert row["tc"] < 1.1 + 0.1
