"""Shared narration helper for the runnable examples.

Every example routes its console narration through :func:`say` so that
``--quiet`` (wired in via :func:`add_quiet_flag`) silences the story
while keeping the final assertions — CI smoke steps run the examples
quietly and only care that they finish with exit code 0.
"""

from __future__ import annotations

import argparse

_quiet = False


def configure(quiet: bool) -> None:
    """Set narration on/off for the current process."""
    global _quiet
    _quiet = bool(quiet)


def add_quiet_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--quiet`` flag to an example's parser."""
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress narration (assertions still run)",
    )


def say(*args, **kwargs) -> None:
    """``print`` that honours the example-wide ``--quiet`` flag."""
    if not _quiet:
        print(*args, **kwargs)
