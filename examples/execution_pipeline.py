#!/usr/bin/env python3
"""End-to-end pipeline: optimize -> cache -> recost -> *execute*.

Shows the whole engine working on real (synthetic) data, in the spirit
of the paper's Appendix H.7 execution experiment: query instances flow
through SCR, and the chosen plans are actually executed on the columnar
store — so optimization time saved and execution time paid are both
real wall-clock numbers.

Run:  python examples/execution_pipeline.py
"""

from repro import Database, SCR, rd1_schema
from repro.executor.engine import PlanExecutor, reference_row_count
from repro.query import QueryTemplate, join, range_predicate
from repro.workload import instances_for_template


def main() -> None:
    print("Building the rd1-like database (normalized order-processing)...")
    db = Database.create(rd1_schema(scale=0.5, skew=1.0), seed=7)

    template = QueryTemplate(
        name="exec_demo",
        database="rd1",
        tables=["account", "contract", "order_hdr"],
        joins=[
            join("contract", "k_account", "account", "a_id"),
            join("order_hdr", "o_contract", "contract", "k_id"),
        ],
        parameterized=[
            range_predicate("account", "a_balance", "<="),
            range_predicate("order_hdr", "o_amount", "<="),
        ],
    )
    engine = db.engine(template)
    scr = SCR(engine, lam=1.5)
    executor = PlanExecutor(db.data, template)

    # Instances need concrete parameter values for execution; the
    # estimator inverts target selectivities through the histograms.
    instances = instances_for_template(
        template, 60, seed=11, estimator=db.estimator
    )

    exec_seconds = 0.0
    rows_returned = 0
    print(f"\nRunning {len(instances)} instances through SCR(1.5) + executor...\n")
    for inst in instances:
        choice = scr.process(inst)
        result = executor.execute(choice.plan, inst)
        exec_seconds += result.wall_seconds
        rows_returned += result.row_count
        if inst.sequence_id < 4:
            expected = reference_row_count(db.data, template, inst)
            status = "OK" if result.row_count == expected else "MISMATCH"
            print(f"  q{inst.sequence_id}: {choice.check:<11} "
                  f"rows={result.row_count:<8} (reference {expected}) {status}")

    counters = engine.counters
    print("\n--- pipeline summary ---")
    print(f"optimizer calls        : {scr.optimizer_calls} / {len(instances)}")
    print(f"optimization wall time : {counters.optimize.total_seconds * 1e3:.1f} ms")
    print(f"recost wall time       : {counters.recost.total_seconds * 1e3:.2f} ms "
          f"({counters.recost.calls} calls)")
    print(f"execution wall time    : {exec_seconds * 1e3:.1f} ms")
    print(f"rows returned in total : {rows_returned}")
    print(f"plans cached           : {scr.plans_cached}")

    saved = counters.optimize.mean_seconds * (
        len(instances) - scr.optimizer_calls
    )
    print(f"\nEstimated optimization time saved vs Optimize-Always: "
          f"{saved * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
