#!/usr/bin/env python3
"""Fault-tolerant cluster demo: worker processes die, guarantees don't.

Boots the multi-process serving tier from :mod:`repro.cluster`:

* a supervisor spawns worker processes, each running the full
  single-process stack (``ConcurrentPQOManager`` over resilient
  engines) for *every* template, with requests routed to owners by
  consistent hashing;
* workers publish checksummed cache snapshots; a restarted worker
  warm-starts from the latest snapshot instead of re-paying the
  optimizer calls its predecessor already made;
* a seeded :class:`ProcessFaultInjector` kills workers mid-workload
  (plus heartbeat stalls, snapshot corruption and slow restarts); the
  supervisor detects death by missed heartbeat, restarts with capped
  backoff, and re-routes in-flight requests to ring peers so every
  submitted future still resolves.

The run ends with the cluster report: exactly one outcome per request
(certified / uncertified / shed), zero λ-violations, and the fleet
table showing restarts and warm-start counts.

Run:  python examples/cluster_server.py [--workers N] [--seed S]
"""

import argparse
import tempfile
import time

from _output import add_quiet_flag, configure, say
from repro.cluster import ClusterSupervisor, ProcessFaultInjector
from repro.harness.reporting import format_table
from repro.workload import instances_for_template
from repro.workload.templates import seed_templates


def main(workers: int, seed: int, m: int) -> None:
    templates = seed_templates()[:4]
    snapshot_dir = tempfile.mkdtemp(prefix="repro-cluster-demo-")
    say(f"Booting {workers} workers over {len(templates)} templates "
          f"(snapshots in {snapshot_dir})...")
    supervisor = ClusterSupervisor(
        templates,
        num_workers=workers,
        snapshot_dir=snapshot_dir,
        lam=2.0,
        db_scale=0.3,
        snapshot_interval=0.3,
    )
    supervisor.start()
    injector = ProcessFaultInjector(supervisor, seed=seed)

    streams = {
        t.name: instances_for_template(t, m, seed=1) for t in templates
    }

    say(f"\nPhase 1: warm the caches ({m // 2} instances/template)...")
    futures = []
    for i in range(m // 2):
        for t in templates:
            futures.append(supervisor.submit(
                t.name, streams[t.name][i].sv.values, sequence_id=i
            ))
    for fut in futures:
        fut.exception()
    time.sleep(0.5)  # let a snapshot interval elapse so warm-starts have food

    say(f"Phase 2: same load with chaos — one fault every "
          f"{len(templates) * 4} requests...")
    futures = []
    for i in range(m // 2, m):
        for t in templates:
            futures.append(supervisor.submit(
                t.name, streams[t.name][i].sv.values, sequence_id=i
            ))
            if len(futures) % (len(templates) * 4) == 0:
                say(f"  chaos: {injector.inject_one()}")
    lost = sum(1 for fut in futures if fut.exception() is not None)

    report = supervisor.cluster_report()
    supervisor.close()

    say()
    say(format_table(report["workers"], title="Fleet after the storm"))
    outcomes = report["outcomes"]
    say()
    say(format_table([{
        "submitted": report["submitted"],
        "resolved": report["resolved"],
        "certified": outcomes["certified"],
        "uncertified": outcomes["uncertified"],
        "shed": outcomes["shed"],
        "retried_on_peer": report["retries"],
        "worker_lost": report["worker_lost"],
        "lambda_violations": (report["supervisor_lambda_violations"]
                              + report["worker_lambda_violations"]),
    }], title="Exactly one outcome per request"))
    say(f"\nfaults injected : {', '.join(injector.injected) or 'none'}")
    say(f"futures raised  : {lost} (worker_lost — counted as shed above)")
    say("\nRecap: death is detected by missed heartbeat, the partition "
          "re-routes to ring peers,\nthe replacement warm-starts from the "
          "last checksummed snapshot, and the λ-guarantee\nholds for every "
          "certified response — crashes cost latency, never correctness.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--m", type=int, default=40,
                        help="instances per template across both phases")
    add_quiet_flag(parser)
    args = parser.parse_args()
    configure(args.quiet)
    main(workers=args.workers, seed=args.seed, m=args.m)
