#!/usr/bin/env python3
"""Quickstart: online PQO with SCR on a TPC-H-like database.

Builds a synthetic skewed TPC-H database, defines a parameterized
3-way-join query, and streams 200 query instances through SCR with a
sub-optimality bound of λ = 2.  Along the way it prints what the
technique decided for interesting instances and, at the end, the three
metrics the paper evaluates: cost sub-optimality, optimizer overheads,
and plans cached.

Run:  python examples/quickstart.py
"""

from repro import Database, SCR, tpch_schema
from repro.harness.oracle import Oracle
from repro.query import QueryTemplate, join, range_predicate
from repro.workload import instances_for_template


def main() -> None:
    print("Building TPC-H-like database (skewed synthetic data)...")
    db = Database.create(tpch_schema(scale=0.5, skew=0.8), seed=42)

    # A parameterized query: 3-way join, two one-sided range parameters.
    template = QueryTemplate(
        name="quickstart",
        database="tpch",
        tables=["customer", "orders", "lineitem"],
        joins=[
            join("orders", "o_custkey", "customer", "c_custkey"),
            join("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ],
        parameterized=[
            range_predicate("orders", "o_totalprice", "<="),
            range_predicate("lineitem", "l_quantity", "<="),
        ],
    )
    engine = db.engine(template)
    scr = SCR(engine, lam=2.0)

    # Ground truth for reporting only (a real deployment has no oracle).
    oracle = Oracle(db, template)

    print(f"Streaming 200 instances of {template.name!r} through SCR(lambda=2)...\n")
    instances = instances_for_template(template, 200, seed=1)

    worst_so = 1.0
    total_chosen = total_optimal = 0.0
    for inst in instances:
        choice = scr.process(inst)
        truth = oracle.optimal(inst.selectivities)
        chosen_cost = oracle.plan_cost(choice.shrunken_memo, inst.selectivities)
        so = chosen_cost / truth.optimal_cost
        worst_so = max(worst_so, so)
        total_chosen += chosen_cost
        total_optimal += truth.optimal_cost
        if inst.sequence_id < 5 or choice.used_optimizer and inst.sequence_id < 40:
            sv = ", ".join(f"{s:.4f}" for s in inst.selectivities)
            print(f"  q{inst.sequence_id:<3} sv=({sv})  ->  {choice.check:<11} "
                  f"SO={so:.3f}")

    print("\n--- results over the sequence ---")
    print(f"instances processed : {scr.instances_processed}")
    print(f"optimizer calls     : {scr.optimizer_calls} "
          f"({100 * scr.optimizer_calls / scr.instances_processed:.1f}%)")
    print(f"plans cached        : {scr.plans_cached} "
          f"(peak {scr.max_plans_cached})")
    print(f"instance list size  : {scr.cache.num_instances}")
    print(f"MSO (worst SO)      : {worst_so:.3f}   (bound: 2.0)")
    print(f"TotalCostRatio      : {total_chosen / total_optimal:.3f}")
    print(f"selectivity hits    : {scr.get_plan.selectivity_hits}")
    print(f"cost-check hits     : {scr.get_plan.cost_hits}")
    speedup = engine.counters.recost_speedup
    print(f"recost speedup      : {speedup:.0f}x cheaper than an optimizer call")

    print("\nOne cached plan, as the executor would run it:")
    print(scr.cache.plans()[0].plan.pretty())


if __name__ == "__main__":
    main()
