#!/usr/bin/env python3
"""Chaos-testing demo: a PQO server that survives a misbehaving engine.

Runs the application-server scenario with every engine API wrapped in
the fault-injection + resilience stack:

* a seeded :class:`FaultInjector` makes recost calls fail or return
  garbage ~20% of the time, optimizer calls time out ~5% of the time,
  and sVector calls occasionally go stale;
* a :class:`ResilientEngineAPI` retries with exponential backoff and
  deterministic jitter, trips a circuit breaker on the Recost API, and
  degrades *fail-closed*: failed recosts become cost-check misses,
  failed optimizations serve the best cached plan flagged uncertified,
  failed sVector calls reuse the last-known-good vector inflated;
* the :class:`PQOManager` quarantines templates whose breaker stays
  open, freezing their plan-budget share until the engine heals.

The run completes without a crash, and the final report shows the
fault / retry / breaker accounting plus which instances kept the
λ-guarantee.

With ``--robust`` the server additionally treats the sVector API as
noisy (a seeded ±20% multiplicative band) and registers every template
with ``check_mode="robust"``: certificates are then corner-valid over
the whole noise band, and the final report shows the certificate mix.

Run:  python examples/resilient_server.py [--robust]
"""

import argparse
import random

from repro import Database, tpch_schema
from repro.core.manager import PQOManager
from repro.engine.faults import FaultConfig, FaultInjector, FaultProfile, NoisyEngine
from repro.engine.resilience import (
    ResiliencePolicy,
    ResilientEngineAPI,
    RetryPolicy,
)
from repro.engine.tracing import TraceEventKind, TraceLog
from repro.harness.reporting import format_table
from repro.query.instance import QueryInstance
from repro.query.sql import parse_sql
from repro.workload import instances_for_template

STATEMENTS = {
    "recent_orders": """
        SELECT * FROM orders, customer
        WHERE orders.o_custkey = customer.c_custkey
          AND orders.o_orderdate >= ?
          AND customer.c_acctbal >= ?
    """,
    "quantity_report": """
        SELECT COUNT(*) FROM lineitem
        WHERE lineitem.l_quantity <= ?
          AND lineitem.l_discount <= ?
    """,
}

POLICY = ResiliencePolicy(
    retry=RetryPolicy(max_attempts=3, base_backoff=0.0005, max_backoff=0.005),
    breaker_failure_threshold=5,
    breaker_cooldown_calls=20,
    svector_inflation=1.5,
)


def main(robust: bool = False) -> None:
    print("Booting the resilient PQO server on a TPC-H-like database...")
    db = Database.create(tpch_schema(scale=0.3), seed=9)
    trace = TraceLog()
    injectors = {}

    def chaos_wrapper(engine):
        engine.trace = trace
        injector = FaultInjector(
            engine,
            FaultConfig.chaos(
                recost_failure_rate=0.20,
                optimize_timeout_rate=0.05,
                svector_corrupt_rate=0.01,
            ),
            seed=len(injectors),
        )
        injectors[engine.template.name] = injector
        inner = injector
        if robust:
            # Estimation error on top of the faults: the sVector comes
            # back perturbed inside an honest ±20% band, which the
            # robust checks certify against at the adversarial corner.
            inner = NoisyEngine(inner, noise=0.2, seed=len(injectors))
        return ResilientEngineAPI(inner, policy=POLICY, seed=len(injectors))

    manager = PQOManager(
        database=db, global_plan_budget=10, engine_wrapper=chaos_wrapper
    )

    scr_kwargs = {"check_mode": "robust"} if robust else {}
    mode_note = " check=robust" if robust else ""
    templates = {}
    for name, sql in STATEMENTS.items():
        template = parse_sql(sql, name=name, database="tpch")
        templates[name] = template
        manager.register(template, lam=2.0, **scr_kwargs)
        print(f"  registered {name:<16} d={template.dimensions} "
              f"lambda=2.00{mode_note}")

    rng = random.Random(4)
    mixed = [
        (name, inst)
        for i, (name, t) in enumerate(templates.items())
        for inst in instances_for_template(t, 250, seed=i)
    ]
    rng.shuffle(mixed)

    served = certified = fallbacks = 0
    certificates = {}

    def serve(batch):
        nonlocal served, certified, fallbacks
        for name, inst in batch:
            choice = manager.process(
                QueryInstance(name, parameters=inst.parameters, sv=inst.sv)
            )
            served += 1
            certified += choice.certified
            fallbacks += choice.check == "fallback"
            kind = choice.certificate if choice.certified else "uncertified"
            certificates[kind] = certificates.get(kind, 0) + 1

    third = len(mixed) // 3
    print(f"\nPhase 1: {third} instances through background chaos "
          f"(recost ~20% faulty, optimize ~5% timeouts)...")
    serve(mixed[:third])
    print(f"  quarantined so far: {manager.quarantined_templates or 'none'}")

    print(f"\nPhase 2: brown-out — recost fails 100%, optimize fails 60% "
          f"per attempt ({third} instances)...")
    for injector in injectors.values():
        injector.config = FaultConfig(
            recost=FaultProfile(error_rate=1.0),
            optimize=FaultProfile(error_rate=0.6),
        )
    serve(mixed[third:2 * third])
    print(f"  quarantined during brown-out: "
          f"{manager.quarantined_templates or 'none'}")

    print(f"\nPhase 3: engine heals ({len(mixed) - 2 * third} instances)...")
    for injector in injectors.values():
        injector.config = FaultConfig.chaos(svector_corrupt_rate=0.0)
    serve(mixed[2 * third:])
    print(f"  quarantined after heal: {manager.quarantined_templates or 'none'}")

    print(f"\nRun completed: {served} served, no crash.")
    print(f"  certified (λ-guaranteed) : {certified}")
    print(f"  uncertified (degraded)   : {served - certified}"
          f"  (of which optimizer fallbacks: {fallbacks})")
    mix = ", ".join(
        f"{kind}={count}" for kind, count in sorted(certificates.items())
    )
    print(f"  certificate mix          : {mix}")
    if manager.quarantined_templates:
        print(f"  quarantined templates    : {manager.quarantined_templates}")

    rows = []
    for name, state in sorted(templates.items()):
        res = manager.state(name).engine.counters.resilience
        injected = injectors[name].injected_count()
        rows.append({
            "template": name,
            "injected": injected,
            "faults": res.total_faults,
            "retries": res.retries,
            "recost fail-closed": res.recost_failed_closed,
            "breaker opens": res.breaker_opens,
            "short-circuits": res.breaker_short_circuits,
            "opt fallbacks": res.optimize_fallbacks,
            "sv fallbacks": res.selectivity_fallbacks,
        })
    print(format_table(rows, title="\nResilience accounting per template"))

    by_kind = {}
    for event in trace.events:
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    print("\nTrace events:")
    for kind in (TraceEventKind.FAULT, TraceEventKind.RETRY,
                 TraceEventKind.BREAKER, TraceEventKind.DEGRADED):
        print(f"  {kind.value:<10} {by_kind.get(kind, 0)}")

    print(format_table(manager.report(), title="\nPer-template state"))
    print("\nFailure semantics recap: failed recosts can only cause cache "
          "misses (the bound is never\ncertified unverified); optimizer "
          "fallbacks are explicitly uncertified; the λ-guarantee\nholds for "
          "every certified instance.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--robust", action="store_true",
        help="noisy sVector API + robust (corner-valid) guarantee checks",
    )
    main(robust=parser.parse_args().robust)
