#!/usr/bin/env python3
"""Compare SCR against every prior online PQO technique.

Reproduces the paper's Table 2 line-up on a TPC-DS-like star-join
template: Optimize-Always, Optimize-Once, PCM, Ellipse, Density,
Ranges and SCR, reporting the three metrics of section 2.1 for each —
a miniature of the full evaluation in `benchmarks/`.

Run:  python examples/technique_comparison.py [m]
"""

import sys

from repro.baselines import (
    Density,
    Ellipse,
    OptimizeAlways,
    OptimizeOnce,
    PCM,
    Ranges,
)
from repro.core.scr import SCR
from repro.harness.reporting import format_table
from repro.harness.runner import SequenceSpec, WorkloadRunner
from repro.workload.orderings import Ordering
from repro.workload.templates import tpcds_templates


def main() -> None:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    runner = WorkloadRunner(db_scale=0.5)
    template = next(t for t in tpcds_templates() if t.name == "tpcds_q25_like")
    print(f"Template {template.name}: {len(template.tables)} tables, "
          f"d={template.dimensions}, m={m}\n")

    spec = SequenceSpec(template=template, m=m, ordering=Ordering.RANDOM, seed=3)
    factories = {
        "OptAlways": OptimizeAlways,
        "OptOnce": OptimizeOnce,
        "PCM2": lambda e: PCM(e, lam=2.0),
        "Ellipse": lambda e: Ellipse(e, delta=0.90),
        "Density": lambda e: Density(e, radius=0.1, confidence=0.5),
        "Ranges": lambda e: Ranges(e, slack=0.01),
        "SCR1.1": lambda e: SCR(e, lam=1.1),
        "SCR2": lambda e: SCR(e, lam=2.0),
    }

    rows = []
    for name, factory in factories.items():
        result = runner.run(spec, factory)
        rows.append({
            "technique": name,
            "MSO": result.mso,
            "TotalCostRatio": result.total_cost_ratio,
            "numOpt%": result.num_opt_percent,
            "numPlans": result.num_plans,
        })
        print(f"  {name} done")

    print()
    print(format_table(rows, title=f"Online PQO techniques on {template.name}"))
    print(
        "\nReading guide (paper section 7): SCR2 should combine bounded MSO\n"
        "(<= 2, like PCM2) with optimizer overheads near the best heuristic\n"
        "and the smallest plan cache of any multi-plan technique."
    )


if __name__ == "__main__":
    main()
