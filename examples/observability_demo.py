#!/usr/bin/env python3
"""Observability demo: watching the λ guarantee live.

PRs 1-3 could only demonstrate the guarantee offline — re-cost every
served plan against an oracle after the run.  This demo drives the
concurrent serving layer with the unified observability handle
(DESIGN.md §10) attached and narrates what it captures *while serving*:

* every response lands in exactly one outcome counter — ``certified``,
  ``uncertified`` or ``shed`` — labeled by template;
* every certified response records the bound its checks actually
  verified (S·G·L or S·R·L) in a histogram, with a live λ-violation
  counter that must stay at zero (Theorem 1, audited at runtime);
* decision spans time each SCR phase (selectivity check → cost check →
  optimize → redundancy check) and each engine API call;
* the whole registry exports as Prometheus text exposition, and the
  spans stream to JSONL.

Run:  python examples/observability_demo.py
"""

import argparse
import json
import tempfile
from collections import defaultdict
from pathlib import Path

from _output import add_quiet_flag, configure, say
from repro import Database, Observability, tpch_schema
from repro.harness.metrics import LatencySummary
from repro.harness.reporting import format_table
from repro.obs import CERTIFIED_BOUND, write_spans_jsonl
from repro.query.instance import QueryInstance
from repro.query.sql import parse_sql
from repro.serving import (
    ConcurrentPQOManager,
    OverloadPolicy,
    ShedError,
    simulated_latency_wrapper,
)
from repro.serving.stats import SERVING_LATENCY_SECONDS
from repro.workload import instances_for_template

STATEMENTS = {
    "recent_orders": """
        SELECT * FROM orders, customer
        WHERE orders.o_custkey = customer.c_custkey
          AND orders.o_orderdate >= ?
          AND customer.c_acctbal >= ?
    """,
    "quantity_report": """
        SELECT COUNT(*) FROM lineitem
        WHERE lineitem.l_quantity <= ?
          AND lineitem.l_discount <= ?
    """,
    "big_spenders": """
        SELECT * FROM customer
        WHERE customer.c_acctbal >= ?
          AND customer.c_custkey <= ?
    """,
}

POLICY = OverloadPolicy(
    queue_limit=6,
    default_deadline_seconds=0.060,
    optimizer_concurrency=1,
    gate_timeout=0.008,
    evaluate_every=15,
    lambda_relax_factor=1.5,
    lambda_ceiling=3.0,
)


def main() -> None:
    say("Booting an instrumented PQO server (one Observability handle "
          "wired through\nengine, SCR, shards and overload protection)...")
    db = Database.create(tpch_schema(scale=0.3), seed=9)
    obs = Observability()
    manager = ConcurrentPQOManager(
        database=db,
        max_workers=8,
        engine_wrapper=simulated_latency_wrapper(
            optimize_seconds=0.020, recost_seconds=0.001
        ),
        overload=POLICY,
        obs=obs,
    )
    templates = {}
    for name, sql in STATEMENTS.items():
        template = parse_sql(sql, name=name, database="tpch")
        templates[name] = template
        manager.register(template, lam=2.0)
        say(f"  registered {name:<16} d={template.dimensions} lambda=2.00")

    def workload(count, seed_base):
        return [
            QueryInstance(name, parameters=inst.parameters, sv=inst.sv)
            for i, (name, t) in enumerate(templates.items())
            for inst in instances_for_template(t, count, seed=seed_base + i)
        ]

    say("\nPhase 1: steady traffic (every response certified)...")
    for instance in workload(40, seed_base=0):
        manager.process(instance)
    totals = obs.audit.outcome_totals()
    say(f"  outcomes so far: {totals}")

    say("\nPhase 2: a burst past the bounded queues "
          "(rejection-as-last-resort kicks in)...")
    futures = [manager.submit(inst) for inst in workload(60, seed_base=50)]
    shed = 0
    for fut in futures:
        try:
            fut.result(timeout=30)
        except ShedError:
            shed += 1
    manager.close()

    # -- the guarantee audit trail, read back from the registry ----------
    totals = obs.audit.outcome_totals()
    say(f"  outcomes after burst: {totals}  (ShedError seen: {shed})")
    assert totals["shed"] == shed, "every shed maps to exactly one counter"

    say("\nGuarantee audit — every response is exactly one outcome, and")
    say("every certified bound was checked against λ the moment it was "
          "served:")
    rows = []
    for name in templates:
        per = obs.audit.outcome_totals(name)
        bound_hist = obs.registry.get(CERTIFIED_BOUND).labels(template=name)
        rows.append({
            "template": name,
            "certified": per["certified"],
            "uncertified": per["uncertified"],
            "shed": per["shed"],
            "bound_p50": round(bound_hist.quantile(0.5), 3),
            "bound_p99": round(bound_hist.quantile(0.99), 3),
        })
    say(format_table(rows, title="Per-template outcomes + certified bounds"))
    say(f"\nlambda violations (must be 0): {obs.audit.total_violations}")
    assert obs.audit.zero_violations, "Theorem 1 was violated at runtime!"

    say("\nWhere responses spent their time (decision spans):")
    by_name = defaultdict(lambda: [0, 0.0])
    for span in obs.spans.spans():
        entry = by_name[span.name]
        entry[0] += 1
        entry[1] += span.duration_s
    span_rows = [
        {"span": name, "count": count, "total_ms": round(total * 1e3, 2)}
        for name, (count, total) in sorted(by_name.items())
    ]
    say(format_table(span_rows, title="Span totals"))

    latency = LatencySummary.from_histogram(
        obs.registry.get(SERVING_LATENCY_SECONDS).labels(
            template="recent_orders"
        )
    )
    say(f"\nrecent_orders serving latency from the registry histogram: "
          f"p50={latency.p50_ms:.2f} ms p99={latency.p99_ms:.2f} ms "
          f"({latency.count} responses)")

    # -- exporters -------------------------------------------------------
    out_dir = Path(tempfile.mkdtemp(prefix="repro_obs_"))
    prom_path = out_dir / "metrics.prom"
    prom_path.write_text(obs.prometheus(), encoding="utf-8")
    spans_path = out_dir / "spans.jsonl"
    span_count = write_spans_jsonl(obs.spans, str(spans_path))
    report_path = out_dir / "obs_report.json"
    report_path.write_text(
        json.dumps(obs.report(), indent=2, sort_keys=True), encoding="utf-8"
    )

    say("\nExported artifacts:")
    say(f"  {prom_path}  "
          f"({len(prom_path.read_text().splitlines())} exposition lines)")
    say(f"  {spans_path}  ({span_count} spans)")
    say(f"  {report_path}  (JSON snapshot, the CLI's `repro obs-report "
          f"--json` twin)")

    say("\nFirst Prometheus lines:")
    for line in prom_path.read_text().splitlines()[:6]:
        say(f"  {line}")

    # -- forensics: one request's causal story ---------------------------
    from repro.obs import explain_trace, format_explanation, render_tree, traces_in

    traces = {
        tid: spans for tid, spans in traces_in(obs.spans.spans()).items() if tid
    }
    if traces:
        tid, spans = next(reversed(traces.items()))
        say("\nOne request, end to end (python -m repro trace --explain):")
        say(render_tree(spans))
        say()
        say(format_explanation(explain_trace(spans)))

    say("\nRun completed: guarantee audited live, zero λ violations.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    add_quiet_flag(parser)
    configure(parser.parse_args().quiet)
    main()
