#!/usr/bin/env python3
"""Run the paper's full evaluation battery at configurable scale.

Drives every experiment from `repro.harness.experiments` — the same
code the benchmarks call — and prints a consolidated report covering
all figures and tables.  Defaults to a medium scale; pass ``--paper``
for the paper-scale configuration (90 templates x 5 orderings x
1000/2000 instances; hours of compute) or ``--quick`` for a fast pass.

Run:  python examples/full_evaluation.py [--quick|--paper]
"""

import sys
import time

from repro.harness.experiments import ExperimentConfig, Experiments
from repro.harness.reporting import format_table
from repro.workload.orderings import Ordering
from repro.workload.suite import SuiteConfig
from repro.workload.templates import (
    dimension_sweep_template,
    tpcds_templates,
)


def make_config(mode: str) -> ExperimentConfig:
    if mode == "--paper":
        return ExperimentConfig(
            suite=SuiteConfig.paper_scale(), db_scale=1.0,
            orderings=list(Ordering),
        )
    if mode == "--quick":
        return ExperimentConfig.smoke()
    return ExperimentConfig(
        suite=SuiteConfig(num_templates=12, instances_per_sequence=200,
                          instances_high_d=300),
        db_scale=0.5,
        orderings=[Ordering.RANDOM, Ordering.DECREASING_COST,
                   Ordering.INSIDE_OUT],
    )


def main() -> None:
    mode = sys.argv[1] if len(sys.argv) > 1 else "--medium"
    experiments = Experiments(make_config(mode))
    start = time.time()

    print("=" * 72)
    print("Figures 9/13/16/17: per-technique aggregates")
    print("=" * 72)
    print(format_table(experiments.technique_aggregates()))

    print()
    print("=" * 72)
    print("Figures 8/10/14: SCR lambda sweep")
    print("=" * 72)
    print(format_table(experiments.lambda_sweep()))

    print()
    print("=" * 72)
    print("Figure 11: numOpt% vs m (4-d query)")
    print("=" * 72)
    fig11_rows = experiments.numopt_vs_m(
        dimension_sweep_template(4), lengths=(250, 500, 1000))
    print(format_table(fig11_rows))
    from repro.harness.figures import line_chart, rows_to_series

    print()
    print(line_chart(
        rows_to_series(fig11_rows, "technique", "m", "numopt_pct"),
        title="numOpt% vs m", x_label="m", y_label="numOpt%",
    ))

    print()
    print("=" * 72)
    print("Figure 12: numOpt% vs dimensions")
    print("=" * 72)
    print(format_table(experiments.numopt_vs_dimensions(dims=(2, 4, 6, 8, 10))))

    print()
    print("=" * 72)
    print("Figure 15: OptOnce-easy sequences")
    print("=" * 72)
    print(format_table(experiments.easy_sequence_comparison()))

    print()
    print("=" * 72)
    print("Figure 19: plan budget sweep")
    print("=" * 72)
    print(format_table(experiments.plan_budget_sweep()))

    print()
    print("=" * 72)
    print("Figure 20: random orderings only")
    print("=" * 72)
    print(format_table(experiments.random_ordering_overheads()))

    print()
    print("=" * 72)
    print("Figure 21: Recost-augmented heuristics")
    print("=" * 72)
    print(format_table(experiments.recost_augmented_baselines()))

    q25 = next(t for t in tpcds_templates() if t.name == "tpcds_q25_like")
    q18 = next(t for t in tpcds_templates() if t.name == "tpcds_q18_like")

    print()
    print("=" * 72)
    print("Appendix D: dynamic lambda (tpcds_q25_like)")
    print("=" * 72)
    print(format_table(experiments.dynamic_lambda_experiment(q25, m=400)))

    print()
    print("=" * 72)
    print("Appendix E: lambda_r sweep (tpcds_q18_like)")
    print("=" * 72)
    print(format_table(experiments.lambda_r_sweep(q18, m=500, lam=1.1)))

    print()
    print("=" * 72)
    print("Section 7.3: getPlan overhead anatomy (tpcds_q18_like)")
    print("=" * 72)
    print(format_table(experiments.getplan_overheads(q18, m=500, lam=1.1)))

    print(f"\nTotal evaluation time: {time.time() - start:.1f}s (mode {mode})")


if __name__ == "__main__":
    main()
