#!/usr/bin/env python3
"""Drifting workloads + offline seeding: life beyond the paper's setup.

Two scenarios the paper's evaluation doesn't cover but its machinery
handles:

1. **Seasonal drift** — the parameter distribution alternates between
   two regimes.  SCR pays optimizer calls the first time it meets each
   regime and almost nothing when a regime recurs (the plan cache is
   regime-memory).
2. **Offline seeding** (the paper's §9 future-work hybrid) — a
   log-spaced grid sweep optimized *before* going online warms the
   cache so the first phase is already cheap.

Run:  python examples/drift_and_seeding.py
"""

from repro import Database, SCR, tpch_schema
from repro.core.seeding import grid_points, seed_cache
from repro.engine.api import EngineAPI
from repro.harness.figures import bar_chart
from repro.optimizer.optimizer import QueryOptimizer
from repro.query import QueryTemplate, join, range_predicate
from repro.workload.drift import seasonal_workload


def make_template() -> QueryTemplate:
    return QueryTemplate(
        name="drift_demo",
        database="tpch",
        tables=["orders", "lineitem"],
        joins=[join("lineitem", "l_orderkey", "orders", "o_orderkey")],
        parameterized=[
            range_predicate("orders", "o_totalprice", "<="),
            range_predicate("lineitem", "l_extendedprice", "<="),
        ],
    )


def fresh_engine(db, template) -> EngineAPI:
    optimizer = QueryOptimizer(template, db.stats, db.estimator, db.cost_model)
    return EngineAPI(template, optimizer, db.estimator)


def run_phases(scr, workload, template_name):
    """Process the workload, returning optimizer calls per phase."""
    boundaries = [0] + workload.phase_boundaries() + [workload.total_length]
    instances = workload.instances(template_name)
    calls = []
    for start, end in zip(boundaries, boundaries[1:]):
        before = scr.optimizer_calls
        for inst in instances[start:end]:
            scr.process(inst)
        calls.append(scr.optimizer_calls - before)
    return calls


def main() -> None:
    print("Building the database and a 2-parameter join template...")
    db = Database.create(tpch_schema(scale=0.4), seed=21)
    template = make_template()
    workload = seasonal_workload(
        template.dimensions, phase_length=120, cycles=2, seed=3
    )

    print(f"\nScenario 1: cold SCR(2) over {workload.total_length} instances "
          f"alternating small/large regimes")
    cold = SCR(fresh_engine(db, template), lam=2.0)
    cold_calls = run_phases(cold, workload, template.name)
    labels = ["P1 small", "P2 large", "P3 small*", "P4 large*"]
    print(bar_chart(dict(zip(labels, map(float, cold_calls))),
                    title="optimizer calls per phase (cold start; * = regime recurs)"))
    print(f"  -> cycle 2 cost {sum(cold_calls[2:])} calls vs cycle 1's "
          f"{sum(cold_calls[:2])}: the cache remembers both regimes")

    print("\nScenario 2: the same workload after offline grid seeding")
    warm_engine = fresh_engine(db, template)
    warm = SCR(warm_engine, lam=2.0)
    report = seed_cache(warm, warm_engine, grid_points(template.dimensions, 6))
    print(f"  offline: optimized {report.points_optimized} grid points, "
          f"kept {report.plans_seeded} plans "
          f"({report.plans_rejected_redundant} rejected as redundant)")
    warm_calls = run_phases(warm, workload, template.name)
    print(bar_chart(dict(zip(labels, map(float, warm_calls))),
                    title="optimizer calls per phase (seeded)"))
    print(f"\nTotals — cold: {sum(cold_calls)} online calls; "
          f"seeded: {sum(warm_calls)} online + {report.points_optimized} "
          f"offline.")
    print("Offline work is amortizable (run at deployment, off the "
          "latency path), which is the appeal of the section 9 hybrid.")


if __name__ == "__main__":
    main()
