#!/usr/bin/env python3
"""Drifting workloads + offline seeding: life beyond the paper's setup.

Two scenarios the paper's evaluation doesn't cover but its machinery
handles:

1. **Seasonal drift** — the parameter distribution alternates between
   two regimes.  SCR pays optimizer calls the first time it meets each
   regime and almost nothing when a regime recurs (the plan cache is
   regime-memory).
2. **Offline seeding** (the paper's §9 future-work hybrid) — a
   log-spaced grid sweep optimized *before* going online warms the
   cache so the first phase is already cheap.

With ``--robust`` both scenarios run the robust check mode behind a
noisy sVector API (seeded ±15% band): reuse decisions are then certified
at the adversarial corner of each instance's uncertainty box, and the
summary reports the certificate mix alongside the optimizer-call counts.

Run:  python examples/drift_and_seeding.py [--robust]
"""

import argparse

from repro import Database, SCR, tpch_schema
from repro.core.seeding import grid_points, seed_cache
from repro.engine.api import EngineAPI
from repro.engine.faults import NoisyEngine
from repro.harness.figures import bar_chart
from repro.optimizer.optimizer import QueryOptimizer
from repro.query import QueryTemplate, join, range_predicate
from repro.workload.drift import seasonal_workload


def make_template() -> QueryTemplate:
    return QueryTemplate(
        name="drift_demo",
        database="tpch",
        tables=["orders", "lineitem"],
        joins=[join("lineitem", "l_orderkey", "orders", "o_orderkey")],
        parameterized=[
            range_predicate("orders", "o_totalprice", "<="),
            range_predicate("lineitem", "l_extendedprice", "<="),
        ],
    )


def fresh_engine(db, template, robust: bool = False) -> EngineAPI:
    optimizer = QueryOptimizer(template, db.stats, db.estimator, db.cost_model)
    engine = EngineAPI(template, optimizer, db.estimator)
    if robust:
        # Honest estimation noise: the sVector comes back perturbed
        # inside a ±15% band the robust checks certify against.
        engine = NoisyEngine(engine, noise=0.15, seed=13)
    return engine


def run_phases(scr, workload, template_name, certificates=None):
    """Process the workload, returning optimizer calls per phase."""
    boundaries = [0] + workload.phase_boundaries() + [workload.total_length]
    instances = workload.instances(template_name)
    calls = []
    for start, end in zip(boundaries, boundaries[1:]):
        before = scr.optimizer_calls
        for inst in instances[start:end]:
            choice = scr.process(inst)
            if certificates is not None:
                kind = choice.certificate if choice.certified else "uncertified"
                certificates[kind] = certificates.get(kind, 0) + 1
        calls.append(scr.optimizer_calls - before)
    return calls


def main(robust: bool = False) -> None:
    print("Building the database and a 2-parameter join template...")
    db = Database.create(tpch_schema(scale=0.4), seed=21)
    template = make_template()
    workload = seasonal_workload(
        template.dimensions, phase_length=120, cycles=2, seed=3
    )
    check_mode = "robust" if robust else "point"
    mode_note = " (robust checks over a noisy sVector API)" if robust else ""
    certificates: dict = {}

    print(f"\nScenario 1: cold SCR(2) over {workload.total_length} instances "
          f"alternating small/large regimes{mode_note}")
    cold = SCR(fresh_engine(db, template, robust), lam=2.0,
               check_mode=check_mode)
    cold_calls = run_phases(cold, workload, template.name, certificates)
    labels = ["P1 small", "P2 large", "P3 small*", "P4 large*"]
    print(bar_chart(dict(zip(labels, map(float, cold_calls))),
                    title="optimizer calls per phase (cold start; * = regime recurs)"))
    print(f"  -> cycle 2 cost {sum(cold_calls[2:])} calls vs cycle 1's "
          f"{sum(cold_calls[:2])}: the cache remembers both regimes")

    print("\nScenario 2: the same workload after offline grid seeding")
    warm_engine = fresh_engine(db, template, robust)
    warm = SCR(warm_engine, lam=2.0, check_mode=check_mode)
    report = seed_cache(warm, warm_engine, grid_points(template.dimensions, 6))
    print(f"  offline: optimized {report.points_optimized} grid points, "
          f"kept {report.plans_seeded} plans "
          f"({report.plans_rejected_redundant} rejected as redundant)")
    warm_calls = run_phases(warm, workload, template.name, certificates)
    print(bar_chart(dict(zip(labels, map(float, warm_calls))),
                    title="optimizer calls per phase (seeded)"))
    print(f"\nTotals — cold: {sum(cold_calls)} online calls; "
          f"seeded: {sum(warm_calls)} online + {report.points_optimized} "
          f"offline.")
    mix = ", ".join(
        f"{kind}={count}" for kind, count in sorted(certificates.items())
    )
    print(f"Certificate mix across both scenarios: {mix}")
    print("Offline work is amortizable (run at deployment, off the "
          "latency path), which is the appeal of the section 9 hybrid.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--robust", action="store_true",
        help="noisy sVector API + robust (corner-valid) guarantee checks",
    )
    main(robust=parser.parse_args().robust)
