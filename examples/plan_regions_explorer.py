#!/usr/bin/env python3
"""Explore plan regions and λ-optimal inference regions in 2-d.

Renders (as ASCII) the optimizer's *plan diagram* over a 2-d
selectivity space — which plan is optimal where — and overlays one
anchor instance's selectivity-based λ-optimal region (the line/
hyperbola-bounded region of Figure 4 in the paper), illustrating why
SCR's regions adapt to position while circles/rectangles don't.

Run:  python examples/plan_regions_explorer.py
"""


from repro import Database, tpch_schema
from repro.core.regions import SelectivityRegion
from repro.query import QueryTemplate, SelectivityVector, join, range_predicate

GRID = 28
LAMBDA = 2.0
ANCHOR = (0.05, 0.08)


def log_axis(i: int, lo: float = 0.001, hi: float = 1.0) -> float:
    return lo * (hi / lo) ** (i / (GRID - 1))


def main() -> None:
    db = Database.create(tpch_schema(scale=0.3), seed=5)
    template = QueryTemplate(
        name="regions_demo",
        database="tpch",
        tables=["orders", "lineitem"],
        joins=[join("lineitem", "l_orderkey", "orders", "o_orderkey")],
        parameterized=[
            range_predicate("orders", "o_totalprice", "<="),
            range_predicate("lineitem", "l_extendedprice", "<="),
        ],
    )
    engine = db.engine(template)

    print(f"Computing the plan diagram on a {GRID}x{GRID} log-scaled grid...")
    signatures: dict[str, str] = {}
    glyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    region = SelectivityRegion(
        SelectivityVector.of(*ANCHOR), budget=LAMBDA
    )

    lines = []
    for row in range(GRID - 1, -1, -1):
        s2 = log_axis(row)
        line = []
        for col in range(GRID):
            s1 = log_axis(col)
            sv = SelectivityVector.of(s1, s2)
            sig = engine.optimize(sv).plan.signature()
            if sig not in signatures:
                signatures[sig] = glyphs[len(signatures) % len(glyphs)]
            ch = signatures[sig]
            if region.contains(sv):
                ch = ch.lower()  # inside the anchor's lambda-region
            line.append(ch)
        lines.append("".join(line))

    print(f"\nPlan diagram (letters = distinct optimal plans, "
          f"{len(signatures)} total).")
    print(f"Lowercase = inside the lambda={LAMBDA} selectivity region of the")
    print(f"anchor at {ANCHOR} (area formula gives "
          f"{region.area_2d():.6f}).\n")
    print("  s2 ^")
    for line in lines:
        print("     |" + line)
    print("     +" + "-" * GRID + "> s1   (both axes log-scaled 0.001..1)")

    print("\nPlans:")
    for sig, glyph in list(signatures.items())[:8]:
        print(f"  {glyph}: {sig[:100]}")

    calls = engine.counters.optimize.calls
    mean_ms = engine.counters.optimize.mean_seconds * 1e3
    print(f"\n({calls} optimizer calls at {mean_ms:.2f} ms mean — the cost "
          f"PQO techniques avoid paying per query instance.)")


if __name__ == "__main__":
    main()
