#!/usr/bin/env python3
"""A miniature application server: SQL templates, shared cache, restarts.

Simulates the deployment the paper motivates — an application firing
several parameterized SQL statements with shifting parameters — using
the higher-level machinery built on top of SCR:

* templates are defined as parameterized SQL text (``?`` markers) and
  parsed by the SQL front-end;
* a :class:`PQOManager` hosts all templates under one global plan
  budget, auto-rebalancing it toward the templates under optimizer
  pressure;
* per-template λ is chosen with the section 6.2 heuristic from observed
  optimization time vs execution cost;
* the plan cache is persisted to JSON and reloaded, simulating a server
  restart that keeps its warm cache.

Run:  python examples/application_server.py
"""

import random

from repro import Database, tpch_schema
from repro.core.manager import PQOManager, choose_lambda
from repro.core.persistence import dump_cache, load_cache
from repro.harness.reporting import format_table
from repro.query.instance import QueryInstance
from repro.query.sql import parse_sql
from repro.workload import instances_for_template

STATEMENTS = {
    "recent_orders": """
        SELECT * FROM orders, customer
        WHERE orders.o_custkey = customer.c_custkey
          AND orders.o_orderdate >= ?
          AND customer.c_acctbal >= ?
    """,
    "big_line_items": """
        SELECT COUNT(*) FROM lineitem, orders
        WHERE lineitem.l_orderkey = orders.o_orderkey
          AND lineitem.l_extendedprice >= ?
          AND orders.o_totalprice >= ?
    """,
    "quantity_report": """
        SELECT COUNT(*) FROM lineitem
        WHERE lineitem.l_quantity <= ?
          AND lineitem.l_discount <= ?
    """,
}


def main() -> None:
    print("Booting the 'application server' on a TPC-H-like database...")
    db = Database.create(tpch_schema(scale=0.4), seed=9)
    manager = PQOManager(database=db, global_plan_budget=12, rebalance_every=100)

    templates = {}
    for name, sql in STATEMENTS.items():
        template = parse_sql(sql, name=name, database="tpch")
        templates[name] = template
        # Probe the engine once to choose lambda per section 6.2.
        engine = db.engine(template)
        probe = instances_for_template(template, 1, seed=1)[0]
        result = engine.optimize(engine.selectivity_vector(probe))
        lam = choose_lambda(
            engine.counters.optimize.mean_seconds, result.cost
        )
        manager.register(template, lam=lam)
        print(f"  registered {name:<16} d={template.dimensions} "
              f"lambda={lam:.2f}")

    # Phase 1: a mixed stream of 600 instances across the statements.
    rng = random.Random(4)
    streams = {
        name: instances_for_template(t, 200, seed=i)
        for i, (name, t) in enumerate(templates.items())
    }
    mixed = [
        (name, inst) for name, stream in streams.items() for inst in stream
    ]
    rng.shuffle(mixed)

    print(f"\nPhase 1: serving {len(mixed)} query instances...")
    for name, inst in mixed:
        manager.process(QueryInstance(name, parameters=inst.parameters,
                                      sv=inst.sv))
    print(format_table(manager.report(), title="\nPer-template state"))
    print(f"total plans cached : {manager.total_plans_cached} "
          f"(global budget 12)")
    print(f"total optimizer calls: {manager.total_optimizer_calls} "
          f"/ {len(mixed)}")

    # Phase 2: persist each template's cache and "restart".
    print("\nSimulating restart: persisting and restoring plan caches...")
    dumps = {
        name: dump_cache(manager.state(name).scr.cache)
        for name in templates
    }
    total_bytes = sum(len(d) for d in dumps.values())
    print(f"  serialized {len(dumps)} caches, {total_bytes / 1024:.1f} KiB total")

    manager2 = PQOManager(database=db, global_plan_budget=12)
    for name, template in templates.items():
        state = manager2.register(template)
        restored = load_cache(dumps[name])
        state.scr.cache = restored
        state.scr.get_plan.cache = restored
        state.scr.manage_cache.cache = restored

    warm_hits = 0
    probes = 0
    for name, stream in streams.items():
        for inst in stream[:30]:
            choice = manager2.process(
                QueryInstance(name, parameters=inst.parameters, sv=inst.sv)
            )
            probes += 1
            if not choice.used_optimizer:
                warm_hits += 1
    print(f"  after restart: {warm_hits}/{probes} instances served from "
          f"the restored cache without optimizer calls")


if __name__ == "__main__":
    main()
