#!/usr/bin/env python3
"""Overload demo: a PQO server surviving a 4x traffic surge.

Drives the concurrent serving layer through a load ramp with overload
protection on (DESIGN.md §9):

* submissions are paced — first comfortably under capacity, then a
  sustained surge at roughly four times what the optimizer pool can
  absorb, then back to calm;
* every submission carries an end-to-end deadline budget, optimizer
  calls pass through a 1-wide gate (the scarce resource), and the
  brownout controller walks the ladder ``normal → lambda_relaxed →
  uncertified → shed`` one level per evaluation tick, with hysteresis
  on the way back down;
* every response is exactly one of **certified** (λ bound verified,
  possibly the relaxed one), **uncertified** (served from cache, no
  bound claimed) or **shed** (refused: nothing cached) — nothing ever
  hangs, and every degraded decision is traced with a reason code.

Run:  python examples/overloaded_server.py
"""

import time
from collections import Counter

from repro import Database, tpch_schema
from repro.engine.tracing import TraceEventKind, TraceLog
from repro.harness.reporting import format_table
from repro.query.instance import QueryInstance
from repro.query.sql import parse_sql
from repro.serving import (
    ConcurrentPQOManager,
    OverloadPolicy,
    ShedError,
    simulated_latency_wrapper,
)
from repro.workload import instances_for_template

STATEMENTS = {
    "recent_orders": """
        SELECT * FROM orders, customer
        WHERE orders.o_custkey = customer.c_custkey
          AND orders.o_orderdate >= ?
          AND customer.c_acctbal >= ?
    """,
    "quantity_report": """
        SELECT COUNT(*) FROM lineitem
        WHERE lineitem.l_quantity <= ?
          AND lineitem.l_discount <= ?
    """,
    "big_spenders": """
        SELECT * FROM customer
        WHERE customer.c_acctbal >= ?
          AND customer.c_custkey <= ?
    """,
}

# Cold templates that "ship with a deploy" right as the surge hits:
# their caches are empty, so nothing can be recost-reused and every
# early instance contends for the 1-wide optimizer gate.
SURGE_STATEMENTS = {
    "flash_sale": """
        SELECT * FROM lineitem, orders
        WHERE lineitem.l_orderkey = orders.o_orderkey
          AND lineitem.l_extendedprice <= ?
          AND orders.o_totalprice <= ?
    """,
    "churn_scan": """
        SELECT * FROM orders, customer
        WHERE orders.o_custkey = customer.c_custkey
          AND customer.c_acctbal <= ?
          AND orders.o_totalprice >= ?
    """,
    "inventory_probe": """
        SELECT COUNT(*) FROM lineitem
        WHERE lineitem.l_quantity >= ?
          AND lineitem.l_extendedprice <= ?
    """,
}

POLICY = OverloadPolicy(
    queue_limit=8,                   # per-template outstanding cap
    default_deadline_seconds=0.080,  # end-to-end budget per submission
    optimizer_concurrency=1,         # the scarce resource under surge
    gate_timeout=0.010,
    gate_wait_high=0.006,            # waits near the gate timeout = hot
    gate_wait_low=0.001,
    evaluate_every=15,
    lambda_relax_factor=1.5,         # brownout level 1 widens λ to 3.0
    lambda_ceiling=3.0,
)


def drive(manager, instances, offered_qps):
    """Submit at a fixed offered rate; return labeled outcomes."""
    futures = []
    interval = 1.0 / offered_qps
    start = time.perf_counter()
    for i, instance in enumerate(instances):
        target = start + i * interval
        now = time.perf_counter()
        if target > now:
            time.sleep(target - now)
        futures.append(manager.submit(instance))
    outcomes = Counter()
    for fut in futures:
        try:
            choice = fut.result(timeout=30)
        except ShedError:
            outcomes["shed"] += 1
        else:
            outcomes["certified" if choice.certified else "uncertified"] += 1
    return outcomes


def main() -> None:
    print("Booting the overload-protected PQO server...")
    db = Database.create(tpch_schema(scale=0.3), seed=9)
    trace = TraceLog()
    manager = ConcurrentPQOManager(
        database=db,
        max_workers=8,
        engine_wrapper=simulated_latency_wrapper(
            optimize_seconds=0.040, recost_seconds=0.002
        ),
        overload=POLICY,
        trace=trace,
    )
    def register_all(statements):
        registered = {}
        for name, sql in statements.items():
            template = parse_sql(sql, name=name, database="tpch")
            registered[name] = template
            manager.register(template, lam=2.0)
            print(f"  registered {name:<16} d={template.dimensions} "
                  f"lambda=2.00 (relaxable to 3.00)")
        return registered

    def phase_workload(templates, count: int, seed_base: int):
        return [
            QueryInstance(name, parameters=inst.parameters, sv=inst.sv)
            for i, (name, t) in enumerate(templates.items())
            for inst in instances_for_template(t, count, seed=seed_base + i)
        ]

    templates = register_all(STATEMENTS)

    calm_instances = phase_workload(templates, 70, seed_base=0)

    # Prime the caches serially so "calm" traffic is mostly selectivity
    # hits (the realistic steady state); the surge's cold templates are
    # what the ladder is for.
    print("\nWarming plan caches (serial, uncontended)...")
    for instance in phase_workload(templates, 12, seed_base=0):
        manager.process(instance)

    print(f"\nPhase 1: calm — {len(calm_instances)} instances at 100 qps...")
    calm = drive(manager, calm_instances, offered_qps=100)
    print(f"  outcomes: {dict(calm)}   "
          f"brownout: {manager.brownout_level.name.lower()}")

    print("\nA deploy ships three cold templates straight into the rush:")
    surge_templates = register_all(SURGE_STATEMENTS)
    # Empty caches: nothing to recost-reuse, so early instances all
    # contend for the 1-wide optimizer gate under 4x traffic.
    surge_instances = phase_workload(surge_templates, 150, seed_base=100)

    print(f"\nPhase 2: surge — {len(surge_instances)} cold-template instances "
          f"at 2000 qps (~4x what the optimizer gate absorbs)...")
    surge = drive(manager, surge_instances, offered_qps=2000)
    print(f"  outcomes: {dict(surge)}   "
          f"brownout: {manager.brownout_level.name.lower()}")

    print(f"\nPhase 3: calm again — {len(calm_instances)} instances "
          f"at 100 qps (hysteresis recovery)...")
    recovered = drive(manager, calm_instances, offered_qps=100)
    print(f"  outcomes: {dict(recovered)}   "
          f"brownout: {manager.brownout_level.name.lower()}")

    print("\nBrownout timeline (one level per tick, traced reasons):")
    coordinator = manager._overload_coordinator
    for t in coordinator.controller.transitions:
        print(f"  tick {t.tick:>3}  {t.previous.name.lower():>14} -> "
              f"{t.current.name.lower():<14} ({t.reason})")
    if not coordinator.controller.transitions:
        print("  (no transitions — raise the surge rate to see the ladder)")

    reasons = Counter(
        e.detail for e in trace.of_kind(TraceEventKind.OVERLOAD)
        if e.check == "uncertified_serve"
    )
    if reasons:
        print("\nDegraded-serve reasons:")
        for reason, count in reasons.most_common():
            print(f"  {reason:<22} {count}")

    print()
    print(format_table([coordinator.report()], title="Overload report"))
    print()
    print(format_table(manager.serving_report(),
                       title="Per-shard serving + health"))
    manager.close()
    print("\nRun completed: every response labeled, nothing hung.")


if __name__ == "__main__":
    main()
